//! Physical redo write-ahead log backing [`crate::FilePager`].
//!
//! # Format
//!
//! A WAL file is a 16-byte header followed by back-to-back records:
//!
//! ```text
//! header:  magic "VISTWAL1" (8) | page_size u32 | reserved u32
//! record:  kind u8 | page_id u32 | len u32 | crc32c u32 | payload[len]
//! ```
//!
//! Two record kinds exist: `PAGE` (a full page image, `len == page_size`;
//! `page_id` 0 is the store header) and `COMMIT` (an 8-byte checkpoint
//! sequence number). The CRC covers `kind ‖ page_id ‖ payload`, so a torn
//! record — truncated length field, partial payload, bit rot — fails
//! verification instead of replaying garbage.
//!
//! # Protocol (see `docs/DURABILITY.md`)
//!
//! Between checkpoints the data file is **never written**: every page write
//! is an append here. A checkpoint fsyncs the records, appends a `COMMIT`,
//! fsyncs again, applies the committed images to the data file, fsyncs it,
//! and truncates the log. Recovery scans for the last `COMMIT`: everything
//! up to it is replayed (idempotently — replaying twice is harmless),
//! everything after it is crash debris and is discarded.

use crate::crc::Crc32c;
use crate::vfs::VFile;
use crate::{Error, PageId, Result};
use std::collections::HashMap;

const WAL_MAGIC: &[u8; 8] = b"VISTWAL1";
/// Size of the WAL file header.
pub(crate) const WAL_HDR: u64 = 16;
/// Size of a record header (`kind u8 | page_id u32 | len u32 | crc u32`).
const REC_HDR: usize = 13;

const KIND_PAGE: u8 = 1;
const KIND_COMMIT: u8 = 2;

/// Outcome of scanning a WAL on open.
#[derive(Debug, Default)]
pub(crate) struct WalScan {
    /// Latest committed image per page: id → record offset.
    pub committed: HashMap<PageId, u64>,
    /// Number of commit records found.
    pub commits: u64,
    /// Bytes after the last commit (uncommitted tail, discarded).
    pub discarded_bytes: u64,
}

pub(crate) struct Wal {
    file: Box<dyn VFile>,
    page_size: usize,
    /// Append position (bytes).
    end: u64,
    /// Checkpoint sequence number of the next commit record.
    seq: u64,
}

fn record_crc(kind: u8, pid: PageId, payload: &[u8]) -> u32 {
    let mut c = Crc32c::new();
    c.update(&[kind]).update(&pid.to_le_bytes()).update(payload);
    c.finish()
}

impl Wal {
    /// Initialize a fresh WAL (writes the header; caller syncs).
    pub fn create(mut file: Box<dyn VFile>, page_size: usize) -> Result<Self> {
        let mut hdr = [0u8; WAL_HDR as usize];
        hdr[0..8].copy_from_slice(WAL_MAGIC);
        hdr[8..12].copy_from_slice(&(page_size as u32).to_le_bytes());
        file.set_len(0)?;
        file.write_at(0, &hdr)?;
        Ok(Wal {
            file,
            page_size,
            end: WAL_HDR,
            seq: 0,
        })
    }

    /// Open an existing WAL file and scan it for committed records. A file
    /// shorter than the header (e.g. created but never written before a
    /// crash) is re-initialized as empty. `expect_page_size` of `None`
    /// accepts whatever the header declares.
    pub fn open(
        mut file: Box<dyn VFile>,
        expect_page_size: Option<usize>,
    ) -> Result<(Self, WalScan)> {
        let len = file.len()?;
        if len < WAL_HDR {
            let page_size = expect_page_size.ok_or(Error::BadMagic { what: "wal header" })?;
            let wal = Wal::create(file, page_size)?;
            return Ok((wal, WalScan::default()));
        }
        let mut hdr = [0u8; WAL_HDR as usize];
        file.read_at(0, &mut hdr)?;
        if &hdr[0..8] != WAL_MAGIC {
            return Err(Error::BadMagic { what: "wal header" });
        }
        let page_size = u32::from_le_bytes(hdr[8..12].try_into().unwrap()) as usize;
        if let Some(expect) = expect_page_size {
            if expect != page_size {
                return Err(Error::Corrupt(format!(
                    "wal page size {page_size} != store page size {expect}"
                )));
            }
        }
        crate::pager::check_page_size(page_size)
            .map_err(|_| Error::Corrupt(format!("bad page size {page_size} in wal header")))?;

        let mut scan = WalScan::default();
        let mut staged: HashMap<PageId, u64> = HashMap::new();
        let mut pos = WAL_HDR;
        let mut committed_end = WAL_HDR;
        let mut rec_hdr = [0u8; REC_HDR];
        let mut payload = vec![0u8; page_size];
        loop {
            if pos + REC_HDR as u64 > len {
                break; // torn record header (or clean end)
            }
            if file.read_at(pos, &mut rec_hdr).is_err() {
                break;
            }
            let kind = rec_hdr[0];
            let pid = PageId::from_le_bytes(rec_hdr[1..5].try_into().unwrap());
            let rlen = u32::from_le_bytes(rec_hdr[5..9].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(rec_hdr[9..13].try_into().unwrap());
            let valid_shape = match kind {
                KIND_PAGE => rlen == page_size,
                KIND_COMMIT => rlen == 8,
                _ => false,
            };
            if !valid_shape || pos + (REC_HDR + rlen) as u64 > len {
                break; // torn or garbage tail
            }
            let body = &mut payload[..rlen];
            if file.read_at(pos + REC_HDR as u64, body).is_err() {
                break;
            }
            if record_crc(kind, pid, body) != crc {
                break; // torn payload
            }
            pos += (REC_HDR + rlen) as u64;
            match kind {
                KIND_PAGE => {
                    staged.insert(pid, pos - (REC_HDR + rlen) as u64);
                }
                KIND_COMMIT => {
                    scan.committed.extend(staged.drain());
                    scan.commits += 1;
                    committed_end = pos;
                }
                _ => unreachable!("shape-checked above"),
            }
        }
        scan.discarded_bytes = len - committed_end;
        Ok((
            Wal {
                file,
                page_size,
                end: len,
                seq: scan.commits,
            },
            scan,
        ))
    }

    /// Append a page image; returns the record's offset (for later
    /// [`Wal::read_page`]). Not synced — [`Wal::commit`] makes it durable.
    pub fn append_page(&mut self, pid: PageId, data: &[u8]) -> Result<u64> {
        debug_assert_eq!(data.len(), self.page_size);
        let mut rec = Vec::with_capacity(REC_HDR + data.len());
        rec.push(KIND_PAGE);
        rec.extend_from_slice(&pid.to_le_bytes());
        rec.extend_from_slice(&(data.len() as u32).to_le_bytes());
        rec.extend_from_slice(&record_crc(KIND_PAGE, pid, data).to_le_bytes());
        rec.extend_from_slice(data);
        let off = self.end;
        self.file.write_at(off, &rec)?;
        self.end += rec.len() as u64;
        Ok(off)
    }

    /// Read back the page image appended at `offset`, verifying its CRC.
    pub fn read_page(&mut self, offset: u64, expect_pid: PageId, buf: &mut [u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), self.page_size);
        let mut rec_hdr = [0u8; REC_HDR];
        self.file.read_at(offset, &mut rec_hdr)?;
        let kind = rec_hdr[0];
        let pid = PageId::from_le_bytes(rec_hdr[1..5].try_into().unwrap());
        let rlen = u32::from_le_bytes(rec_hdr[5..9].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(rec_hdr[9..13].try_into().unwrap());
        if kind != KIND_PAGE || pid != expect_pid || rlen != self.page_size {
            return Err(Error::TruncatedWal { offset });
        }
        self.file.read_at(offset + REC_HDR as u64, buf)?;
        let actual = record_crc(kind, pid, buf);
        if actual != crc {
            return Err(Error::ChecksumMismatch {
                page: u64::from(pid),
                expected: crc,
                actual,
            });
        }
        Ok(())
    }

    /// Make all appended records durable and seal them with a commit record
    /// (fsync · commit · fsync).
    pub fn commit(&mut self) -> Result<()> {
        self.file.sync()?;
        let payload = self.seq.to_le_bytes();
        let mut rec = Vec::with_capacity(REC_HDR + payload.len());
        rec.push(KIND_COMMIT);
        rec.extend_from_slice(&0u32.to_le_bytes());
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        rec.extend_from_slice(&record_crc(KIND_COMMIT, 0, &payload).to_le_bytes());
        rec.extend_from_slice(&payload);
        self.file.write_at(self.end, &rec)?;
        self.end += rec.len() as u64;
        self.file.sync()?;
        self.seq += 1;
        Ok(())
    }

    /// Fsync the log file without committing (used once at store creation
    /// to make the empty log's header durable).
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync()?;
        Ok(())
    }

    /// Discard all records (the checkpoint has been applied).
    pub fn truncate(&mut self) -> Result<()> {
        self.file.set_len(WAL_HDR)?;
        self.file.sync()?;
        self.end = WAL_HDR;
        Ok(())
    }

    /// Current log size in bytes (header included).
    pub fn bytes(&self) -> u64 {
        self.end
    }

    /// Page size declared by the log header.
    pub fn page_size(&self) -> usize {
        self.page_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;
    use crate::vfs::{OpenMode, RealVfs, Vfs};

    const PS: usize = 128;

    fn open_file(dir: &TempDir, mode: OpenMode) -> Box<dyn VFile> {
        RealVfs.open(&dir.file("wal"), mode).unwrap()
    }

    fn page(fill: u8) -> Vec<u8> {
        vec![fill; PS]
    }

    #[test]
    fn committed_records_replay_uncommitted_tail_discarded() {
        let dir = TempDir::new("wal-replay");
        {
            let mut wal = Wal::create(open_file(&dir, OpenMode::CreateTruncate), PS).unwrap();
            wal.append_page(3, &page(0xAA)).unwrap();
            wal.append_page(5, &page(0xBB)).unwrap();
            wal.append_page(3, &page(0xCC)).unwrap(); // newer image of 3
            wal.commit().unwrap();
            wal.append_page(9, &page(0xDD)).unwrap(); // never committed
        }
        let (mut wal, scan) = Wal::open(open_file(&dir, OpenMode::MustExist), Some(PS)).unwrap();
        assert_eq!(scan.commits, 1);
        assert_eq!(scan.committed.len(), 2);
        assert!(scan.discarded_bytes > 0, "uncommitted tail measured");
        let mut buf = page(0);
        wal.read_page(scan.committed[&3], 3, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0xCC), "latest image wins");
        wal.read_page(scan.committed[&5], 5, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0xBB));
    }

    #[test]
    fn torn_tail_is_ignored_not_fatal() {
        let dir = TempDir::new("wal-torn");
        let full_len;
        {
            let mut wal = Wal::create(open_file(&dir, OpenMode::CreateTruncate), PS).unwrap();
            wal.append_page(1, &page(0x11)).unwrap();
            wal.commit().unwrap();
            wal.append_page(2, &page(0x22)).unwrap();
            full_len = wal.bytes();
        }
        // Tear the last record at every possible byte boundary.
        let committed_end = full_len - (REC_HDR + PS) as u64;
        for cut in [
            committed_end + 1,
            committed_end + REC_HDR as u64 - 1,
            committed_end + REC_HDR as u64 + 7,
            full_len - 1,
        ] {
            let mut f = open_file(&dir, OpenMode::MustExist);
            f.set_len(cut).unwrap();
            drop(f);
            let (_, scan) = Wal::open(open_file(&dir, OpenMode::MustExist), Some(PS)).unwrap();
            assert_eq!(scan.commits, 1, "cut at {cut}");
            assert_eq!(scan.committed.len(), 1, "cut at {cut}");
            assert_eq!(scan.discarded_bytes, cut - committed_end, "cut at {cut}");
        }
    }

    #[test]
    fn flipped_byte_invalidates_from_there_on() {
        let dir = TempDir::new("wal-flip");
        {
            let mut wal = Wal::create(open_file(&dir, OpenMode::CreateTruncate), PS).unwrap();
            wal.append_page(1, &page(0x11)).unwrap();
            wal.commit().unwrap();
            wal.append_page(2, &page(0x22)).unwrap();
            wal.commit().unwrap();
        }
        // Flip a byte inside the FIRST page record's payload: the scan stops
        // there, so only records before it replay — never garbage.
        let mut f = open_file(&dir, OpenMode::MustExist);
        let off = WAL_HDR + REC_HDR as u64 + 10;
        let mut b = [0u8; 1];
        f.read_at(off, &mut b).unwrap();
        b[0] ^= 0x40;
        f.write_at(off, &b).unwrap();
        drop(f);
        let (_, scan) = Wal::open(open_file(&dir, OpenMode::MustExist), Some(PS)).unwrap();
        assert_eq!(scan.commits, 0, "commits behind the corruption are lost");
        assert!(scan.committed.is_empty());
        assert!(scan.discarded_bytes > 0);
    }

    #[test]
    fn bad_magic_and_page_size_mismatch() {
        let dir = TempDir::new("wal-magic");
        std::fs::write(dir.file("wal"), b"garbage garbage garbage").unwrap();
        assert!(matches!(
            Wal::open(open_file(&dir, OpenMode::MustExist), Some(PS)),
            Err(Error::BadMagic { what: "wal header" })
        ));
        {
            let _ = Wal::create(open_file(&dir, OpenMode::CreateTruncate), PS).unwrap();
        }
        assert!(matches!(
            Wal::open(open_file(&dir, OpenMode::MustExist), Some(PS * 2)),
            Err(Error::Corrupt(_))
        ));
    }

    #[test]
    fn short_file_reinitialized_as_empty() {
        let dir = TempDir::new("wal-short");
        std::fs::write(dir.file("wal"), b"VIST").unwrap(); // crashed mid-create
        let (wal, scan) = Wal::open(open_file(&dir, OpenMode::MustExist), Some(PS)).unwrap();
        assert_eq!(scan.commits, 0);
        assert_eq!(wal.bytes(), WAL_HDR);
    }
}
