//! Durable, crash-safe file-backed pager.
//!
//! # Layout
//!
//! The data file is a sequence of *frames*: `page_size` payload bytes
//! followed by an 8-byte trailer holding `crc32c(page_id ‖ payload)` (4
//! bytes) and 4 reserved bytes. The checksum covering the page id catches
//! misdirected writes, not just bit rot. Frame 0 is the header (magic,
//! page size, free-list head, high-water mark, live count); freed pages form
//! an intrusive linked list through their first four bytes, mirroring the
//! classic Berkeley-DB-style store the paper builds on.
//!
//! # Durability protocol
//!
//! Between checkpoints the data file is **never touched**. Every page write
//! — caller writes, buffer-pool eviction write-backs, frees — appends a
//! checksummed record to a sidecar write-ahead log (`<path>.wal`, see
//! [`crate::wal`]), and an in-memory map remembers the newest WAL offset per
//! page so reads observe pending writes. [`Pager::sync`] is the checkpoint:
//!
//! 1. append the header image and zero-images for allocated-but-unwritten
//!    frames,
//! 2. fsync the log and seal it with a commit record,
//! 3. apply the committed images to the data file,
//! 4. fsync the data file,
//! 5. truncate the log.
//!
//! A crash at *any* step leaves the store recoverable: before the commit
//! record is durable, recovery discards the log tail and the data file still
//! holds the previous checkpoint; after it, recovery replays the log
//! (idempotently) and completes the checkpoint. [`FilePager::open`] performs
//! that replay automatically. `docs/DURABILITY.md` walks the full state
//! machine; `tests/crash_recovery.rs` proves it at every injection point.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use crate::crc::Crc32c;
use crate::pager::check_page_size;
use crate::vfs::{OpenMode, RealVfs, VFile, Vfs};
use crate::wal::{Wal, WAL_HDR};
use crate::{Error, IoStats, PageId, Pager, Result, INVALID_PAGE};

const MAGIC: &[u8; 8] = b"VISTPG02";
const HDR_MAGIC: usize = 0;
const HDR_PAGE_SIZE: usize = 8;
const HDR_FREE_HEAD: usize = 12;
const HDR_HIGH_WATER: usize = 16;
const HDR_LIVE: usize = 20;

/// Bytes appended to each page on disk: `crc32c(page_id ‖ payload)` plus
/// reserved padding.
pub const PAGE_TRAILER: usize = 8;

fn frame_crc(id: PageId, payload: &[u8]) -> u32 {
    let mut c = Crc32c::new();
    c.update(&id.to_le_bytes()).update(payload);
    c.finish()
}

/// A [`Pager`] persisting pages to a file, protected by a write-ahead log.
pub struct FilePager {
    data: Box<dyn VFile>,
    wal: Wal,
    page_size: usize,
    free_head: PageId,
    /// Next never-allocated page id (page 0 is the header).
    high_water: PageId,
    /// Frames `< durable_frames` hold valid checksummed images in the data
    /// file; higher ids live only in the WAL (`pending`) or are fresh zeros.
    durable_frames: PageId,
    live: u64,
    header_dirty: bool,
    /// Pages written since the last checkpoint: id → newest WAL offset.
    pending: HashMap<PageId, u64>,
    stats: IoStats,
}

impl FilePager {
    /// Create a new store at `path`, truncating any existing file.
    pub fn create<P: AsRef<Path>>(path: P, page_size: usize) -> Result<Self> {
        Self::create_with_vfs(&RealVfs, path, page_size)
    }

    /// Open an existing store, validating its header and replaying any
    /// committed write-ahead-log records left by a crash.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        Self::open_with_vfs(&RealVfs, path)
    }

    /// The write-ahead-log path for a store at `path` (`<path>.wal`).
    #[must_use]
    pub fn wal_path<P: AsRef<Path>>(path: P) -> PathBuf {
        let mut os = path.as_ref().as_os_str().to_os_string();
        os.push(".wal");
        PathBuf::from(os)
    }

    /// [`FilePager::create`] through an explicit [`Vfs`] (fault injection).
    ///
    /// Durability order: write + fsync the header frame, write + fsync the
    /// empty log, then fsync the parent directory so both files' names
    /// survive a crash (a freshly created file is not durable until its
    /// directory entry is).
    pub fn create_with_vfs<P: AsRef<Path>>(
        vfs: &dyn Vfs,
        path: P,
        page_size: usize,
    ) -> Result<Self> {
        crate::register_metrics();
        check_page_size(page_size)?;
        let path = path.as_ref();
        let data = vfs.open(path, OpenMode::CreateTruncate)?;
        let wal_file = vfs.open(&Self::wal_path(path), OpenMode::CreateTruncate)?;
        let mut wal = Wal::create(wal_file, page_size)?;
        wal.sync()?;
        let mut pager = FilePager {
            data,
            wal,
            page_size,
            free_head: INVALID_PAGE,
            high_water: 1,
            durable_frames: 1,
            live: 0,
            header_dirty: false,
            pending: HashMap::new(),
            stats: IoStats::default(),
        };
        let hdr = pager.header_page();
        pager.write_frame(0, &hdr)?;
        pager.data.sync()?;
        vfs.sync_parent_dir(path)?;
        Ok(pager)
    }

    /// [`FilePager::open`] through an explicit [`Vfs`] (fault injection).
    pub fn open_with_vfs<P: AsRef<Path>>(vfs: &dyn Vfs, path: P) -> Result<Self> {
        crate::register_metrics();
        let path = path.as_ref();
        let mut data = vfs.open(path, OpenMode::MustExist)?;

        // The header frame may be torn (crash mid-checkpoint-apply), so it
        // cannot be trusted yet; read the raw page size only as a fallback
        // for when no log exists. The log header is written once at creation
        // and never rewritten, so it is the authority when present.
        let data_len = data.len()?;
        let ps_data = if data_len >= (HDR_PAGE_SIZE + 4) as u64 {
            let mut raw = [0u8; HDR_PAGE_SIZE + 4];
            data.read_at(0, &mut raw)?;
            (&raw[..8] == MAGIC)
                .then(|| u32::from_le_bytes(raw[HDR_PAGE_SIZE..].try_into().unwrap()) as usize)
        } else {
            None
        };
        if let Some(ps) = ps_data {
            check_page_size(ps).map_err(|_| Error::Corrupt("bad page size in header".into()))?;
        }
        let mut wal_file = vfs.open(&Self::wal_path(path), OpenMode::OpenOrCreate)?;
        if wal_file.len()? < WAL_HDR && ps_data.is_none() {
            return Err(Error::BadMagic {
                what: "store header",
            });
        }
        let (mut wal, scan) = Wal::open(wal_file, ps_data)?;
        let page_size = wal.page_size();

        // Replay: copy every committed image into the data file, make the
        // result durable, then drop the log. Replaying the same records
        // twice (crash mid-replay, reopen) converges to the same bytes.
        let mut stats = IoStats::default();
        let mut page = vec![0u8; page_size];
        if !scan.committed.is_empty() {
            let recovery_start = vist_obs::now();
            let mut ids: Vec<PageId> = scan.committed.keys().copied().collect();
            ids.sort_unstable();
            for id in ids {
                wal.read_page(scan.committed[&id], id, &mut page)?;
                write_frame_to(&mut *data, page_size, id, &page)?;
                stats.recovered_pages += 1;
            }
            data.sync()?;
            vist_obs::observe_since(
                vist_obs::histogram!("vist_storage_recovery_nanos"),
                recovery_start,
            );
            vist_obs::counter!("vist_storage_recovered_pages_total").add(stats.recovered_pages);
        }
        if wal.bytes() > WAL_HDR {
            wal.truncate()?;
        }
        stats.wal_discarded_bytes = scan.discarded_bytes;

        // Only now is the header frame trustworthy.
        read_frame_from(&mut *data, page_size, 0, &mut page)?;
        if &page[HDR_MAGIC..HDR_MAGIC + 8] != MAGIC {
            return Err(Error::BadMagic {
                what: "store header",
            });
        }
        let hdr_ps =
            u32::from_le_bytes(page[HDR_PAGE_SIZE..HDR_PAGE_SIZE + 4].try_into().unwrap()) as usize;
        if hdr_ps != page_size {
            return Err(Error::Corrupt(format!(
                "header page size {hdr_ps} != wal page size {page_size}"
            )));
        }
        let free_head =
            PageId::from_le_bytes(page[HDR_FREE_HEAD..HDR_FREE_HEAD + 4].try_into().unwrap());
        let high_water =
            PageId::from_le_bytes(page[HDR_HIGH_WATER..HDR_HIGH_WATER + 4].try_into().unwrap());
        let live = u64::from_le_bytes(page[HDR_LIVE..HDR_LIVE + 8].try_into().unwrap());
        if high_water == 0 {
            return Err(Error::Corrupt("zero high-water mark".into()));
        }
        Ok(FilePager {
            data,
            wal,
            page_size,
            free_head,
            high_water,
            // Every checkpoint covers all frames below its high-water mark
            // (gap zero-images included), so after replay they are all valid.
            durable_frames: high_water,
            live,
            header_dirty: false,
            pending: HashMap::new(),
            stats,
        })
    }

    fn header_page(&self) -> Vec<u8> {
        let mut hdr = vec![0u8; self.page_size];
        hdr[HDR_MAGIC..HDR_MAGIC + 8].copy_from_slice(MAGIC);
        hdr[HDR_PAGE_SIZE..HDR_PAGE_SIZE + 4]
            .copy_from_slice(&(self.page_size as u32).to_le_bytes());
        hdr[HDR_FREE_HEAD..HDR_FREE_HEAD + 4].copy_from_slice(&self.free_head.to_le_bytes());
        hdr[HDR_HIGH_WATER..HDR_HIGH_WATER + 4].copy_from_slice(&self.high_water.to_le_bytes());
        hdr[HDR_LIVE..HDR_LIVE + 8].copy_from_slice(&self.live.to_le_bytes());
        hdr
    }

    fn write_frame(&mut self, id: PageId, payload: &[u8]) -> Result<()> {
        write_frame_to(&mut *self.data, self.page_size, id, payload)
    }

    fn check_id(&self, id: PageId) -> Result<()> {
        if id == 0 || id >= self.high_water {
            return Err(Error::InvalidPage(u64::from(id)));
        }
        Ok(())
    }

    /// Route a page image through the WAL and remember its offset.
    fn wal_write(&mut self, id: PageId, payload: &[u8]) -> Result<()> {
        let t = vist_obs::now();
        let off = self.wal.append_page(id, payload)?;
        vist_obs::observe_since(vist_obs::histogram!("vist_storage_wal_append_nanos"), t);
        self.stats.wal_appends += 1;
        vist_obs::counter!("vist_storage_wal_append_total").inc();
        vist_obs::attr::charge_wal_append();
        self.pending.insert(id, off);
        Ok(())
    }

    /// Read a page image from wherever its newest version lives: the WAL
    /// (pending), the data file (checkpointed), or nowhere (fresh zeros).
    fn read_current(&mut self, id: PageId, buf: &mut [u8]) -> Result<()> {
        if let Some(&off) = self.pending.get(&id) {
            return self.wal.read_page(off, id, buf);
        }
        if id < self.durable_frames {
            return read_frame_from(&mut *self.data, self.page_size, id, buf);
        }
        buf.fill(0);
        Ok(())
    }
}

fn write_frame_to(
    data: &mut dyn VFile,
    page_size: usize,
    id: PageId,
    payload: &[u8],
) -> Result<()> {
    debug_assert_eq!(payload.len(), page_size);
    let mut frame = Vec::with_capacity(page_size + PAGE_TRAILER);
    frame.extend_from_slice(payload);
    frame.extend_from_slice(&frame_crc(id, payload).to_le_bytes());
    frame.extend_from_slice(&[0u8; 4]);
    let offset = u64::from(id) * (page_size + PAGE_TRAILER) as u64;
    data.write_at(offset, &frame)?;
    Ok(())
}

fn read_frame_from(
    data: &mut dyn VFile,
    page_size: usize,
    id: PageId,
    buf: &mut [u8],
) -> Result<()> {
    debug_assert_eq!(buf.len(), page_size);
    let frame_size = page_size + PAGE_TRAILER;
    let mut frame = vec![0u8; frame_size];
    data.read_at(u64::from(id) * frame_size as u64, &mut frame)?;
    let (payload, trailer) = frame.split_at(page_size);
    let expected = u32::from_le_bytes(trailer[..4].try_into().unwrap());
    let actual = frame_crc(id, payload);
    if expected != actual {
        return Err(Error::ChecksumMismatch {
            page: u64::from(id),
            expected,
            actual,
        });
    }
    buf.copy_from_slice(payload);
    Ok(())
}

impl Pager for FilePager {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn allocate(&mut self) -> Result<PageId> {
        if self.free_head != INVALID_PAGE {
            let id = self.free_head;
            // The free page's first four bytes link to the next free page.
            let mut page = vec![0u8; self.page_size];
            self.read_current(id, &mut page)?;
            self.free_head = PageId::from_le_bytes(page[0..4].try_into().unwrap());
            // Hand the page back zeroed (through the WAL, like any write).
            page.fill(0);
            self.wal_write(id, &page)?;
            self.stats.allocations += 1;
            self.live += 1;
            self.header_dirty = true;
            return Ok(id);
        }
        let id = self.high_water;
        if id == INVALID_PAGE {
            return Err(Error::Corrupt("page id space exhausted".into()));
        }
        // Fresh pages need no I/O: reads zero-fill until first write, and
        // the next checkpoint persists a zero image for any never written.
        self.high_water += 1;
        self.stats.allocations += 1;
        self.live += 1;
        self.header_dirty = true;
        Ok(id)
    }

    fn free(&mut self, id: PageId) -> Result<()> {
        self.check_id(id)?;
        let mut page = vec![0u8; self.page_size];
        page[0..4].copy_from_slice(&self.free_head.to_le_bytes());
        self.wal_write(id, &page)?;
        self.free_head = id;
        self.live = self.live.saturating_sub(1);
        self.header_dirty = true;
        self.stats.frees += 1;
        Ok(())
    }

    fn read(&mut self, id: PageId, buf: &mut [u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), self.page_size);
        self.check_id(id)?;
        self.read_current(id, buf)?;
        self.stats.reads += 1;
        Ok(())
    }

    fn write(&mut self, id: PageId, buf: &[u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), self.page_size);
        self.check_id(id)?;
        self.wal_write(id, buf)?;
        self.stats.writes += 1;
        Ok(())
    }

    fn live_pages(&self) -> u64 {
        self.live
    }

    fn store_bytes(&self) -> u64 {
        u64::from(self.high_water) * (self.page_size + PAGE_TRAILER) as u64
    }

    /// Checkpoint: make everything written since the last checkpoint
    /// durable, atomically with respect to crashes (see the module docs).
    fn sync(&mut self) -> Result<()> {
        if self.pending.is_empty() && !self.header_dirty {
            return Ok(());
        }
        let checkpoint_start = vist_obs::now();
        // Stage the header and zero-images for allocated-but-never-written
        // frames, so the data file has a valid frame below high_water for
        // every id once this checkpoint applies.
        let hdr = self.header_page();
        self.wal_write(0, &hdr)?;
        let zero = vec![0u8; self.page_size];
        for id in self.durable_frames..self.high_water {
            if !self.pending.contains_key(&id) {
                self.wal_write(id, &zero)?;
            }
        }
        // The commit record is the atomic durability point.
        self.wal.commit()?;
        self.stats.wal_commits += 1;
        vist_obs::counter!("vist_storage_wal_commit_total").inc();
        // Apply. A failure from here on is retryable: `pending` still maps
        // every page to its committed image, and reopening replays the log.
        let mut ids: Vec<PageId> = self.pending.keys().copied().collect();
        ids.sort_unstable();
        let mut page = vec![0u8; self.page_size];
        for id in ids {
            self.wal.read_page(self.pending[&id], id, &mut page)?;
            self.write_frame(id, &page)?;
        }
        self.data.sync()?;
        // The data file is now authoritative; drop the log.
        self.pending.clear();
        self.durable_frames = self.durable_frames.max(self.high_water);
        self.header_dirty = false;
        self.wal.truncate()?;
        vist_obs::observe_since(
            vist_obs::histogram!("vist_storage_checkpoint_nanos"),
            checkpoint_start,
        );
        Ok(())
    }

    fn stats(&self) -> IoStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;

    #[test]
    fn create_write_reopen_read() {
        let dir = TempDir::new("file-reopen");
        let path = dir.file("store");
        let id;
        {
            let mut p = FilePager::create(&path, 256).unwrap();
            id = p.allocate().unwrap();
            let mut buf = vec![0u8; 256];
            buf[10] = 0x5A;
            p.write(id, &buf).unwrap();
            p.sync().unwrap();
        }
        {
            let mut p = FilePager::open(&path).unwrap();
            assert_eq!(p.page_size(), 256);
            assert_eq!(p.live_pages(), 1);
            let mut out = vec![0u8; 256];
            p.read(id, &mut out).unwrap();
            assert_eq!(out[10], 0x5A);
        }
    }

    #[test]
    fn free_list_survives_reopen() {
        let dir = TempDir::new("file-freelist");
        let path = dir.file("store");
        let (a, b);
        {
            let mut p = FilePager::create(&path, 256).unwrap();
            a = p.allocate().unwrap();
            b = p.allocate().unwrap();
            p.free(a).unwrap();
            p.sync().unwrap();
        }
        {
            let mut p = FilePager::open(&path).unwrap();
            let c = p.allocate().unwrap();
            assert_eq!(c, a, "freed page is recycled after reopen");
            let d = p.allocate().unwrap();
            assert!(d != a && d != b, "next allocation extends the file");
            // Recycled page must read as zeroes (the free-list link is wiped).
            let mut out = vec![0xEEu8; 256];
            p.read(c, &mut out).unwrap();
            assert!(out.iter().all(|&x| x == 0));
        }
    }

    #[test]
    fn header_page_not_addressable() {
        let dir = TempDir::new("file-header");
        let mut p = FilePager::create(dir.file("store"), 256).unwrap();
        assert!(p.read(0, &mut vec![0u8; 256]).is_err());
        assert!(p.write(0, &vec![0u8; 256]).is_err());
        assert!(p.free(0).is_err());
    }

    #[test]
    fn open_rejects_garbage() {
        let dir = TempDir::new("file-garbage");
        let path = dir.file("store");
        std::fs::write(&path, b"this is not a vist store, not at all....").unwrap();
        assert!(matches!(
            FilePager::open(&path),
            Err(Error::BadMagic {
                what: "store header"
            })
        ));
    }

    #[test]
    fn store_bytes_grows_with_allocations() {
        let dir = TempDir::new("file-bytes");
        let mut p = FilePager::create(dir.file("store"), 256).unwrap();
        let base = p.store_bytes();
        p.allocate().unwrap();
        p.allocate().unwrap();
        // Each frame is page_size + PAGE_TRAILER bytes.
        assert_eq!(p.store_bytes(), base + 2 * (256 + PAGE_TRAILER) as u64);
    }

    #[test]
    fn unsynced_writes_are_discarded_on_reopen() {
        let dir = TempDir::new("file-unsynced");
        let path = dir.file("store");
        let id;
        {
            let mut p = FilePager::create(&path, 256).unwrap();
            id = p.allocate().unwrap();
            p.write(id, &[0x11u8; 256]).unwrap();
            p.sync().unwrap();
            p.write(id, &[0x22u8; 256]).unwrap();
            // Dropped without sync: the 0x22 image sits uncommitted in the
            // log and must be discarded, not half-applied.
        }
        let mut p = FilePager::open(&path).unwrap();
        let mut out = vec![0u8; 256];
        p.read(id, &mut out).unwrap();
        assert!(
            out.iter().all(|&x| x == 0x11),
            "checkpointed image survives"
        );
        assert!(
            p.stats().wal_discarded_bytes > 0,
            "the uncommitted tail was measured and dropped"
        );
    }

    #[test]
    fn allocated_but_unwritten_page_reads_zero_across_checkpoint() {
        let dir = TempDir::new("file-gap");
        let path = dir.file("store");
        let (a, b);
        {
            let mut p = FilePager::create(&path, 256).unwrap();
            a = p.allocate().unwrap();
            b = p.allocate().unwrap();
            p.write(b, &[0x77u8; 256]).unwrap();
            let mut out = vec![0xEEu8; 256];
            p.read(a, &mut out).unwrap();
            assert!(out.iter().all(|&x| x == 0), "fresh page zero before sync");
            p.sync().unwrap();
        }
        let mut p = FilePager::open(&path).unwrap();
        let mut out = vec![0xEEu8; 256];
        p.read(a, &mut out).unwrap();
        assert!(out.iter().all(|&x| x == 0), "gap image replays as zeros");
        p.read(b, &mut out).unwrap();
        assert!(out.iter().all(|&x| x == 0x77));
    }

    #[test]
    fn flipped_payload_byte_is_a_checksum_mismatch() {
        let dir = TempDir::new("file-flip");
        let path = dir.file("store");
        let id;
        {
            let mut p = FilePager::create(&path, 256).unwrap();
            id = p.allocate().unwrap();
            p.write(id, &[0xABu8; 256]).unwrap();
            p.sync().unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let off = id as usize * (256 + PAGE_TRAILER) + 100;
        bytes[off] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let mut p = FilePager::open(&path).unwrap();
        let mut out = vec![0u8; 256];
        match p.read(id, &mut out) {
            Err(Error::ChecksumMismatch { page, .. }) => assert_eq!(page, u64::from(id)),
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn flipped_header_byte_fails_open_with_checksum_mismatch() {
        let dir = TempDir::new("file-hdrflip");
        let path = dir.file("store");
        {
            let mut p = FilePager::create(&path, 256).unwrap();
            p.allocate().unwrap();
            p.sync().unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[HDR_HIGH_WATER] ^= 0x01; // tamper inside the header payload
        std::fs::write(&path, &bytes).unwrap();
        match FilePager::open(&path) {
            Err(Error::ChecksumMismatch { page: 0, .. }) => {}
            Err(other) => panic!("expected header checksum mismatch, got {other:?}"),
            Ok(_) => panic!("tampered header must not open"),
        }
    }

    #[test]
    fn wal_counters_track_checkpoints() {
        let dir = TempDir::new("file-counters");
        let mut p = FilePager::create(dir.file("store"), 256).unwrap();
        let id = p.allocate().unwrap();
        p.write(id, &[1u8; 256]).unwrap();
        assert_eq!(p.stats().wal_appends, 1);
        assert_eq!(p.stats().wal_commits, 0);
        p.sync().unwrap();
        // The checkpoint appended the header image too.
        assert_eq!(p.stats().wal_appends, 2);
        assert_eq!(p.stats().wal_commits, 1);
        p.sync().unwrap();
        assert_eq!(p.stats().wal_commits, 1, "clean sync is a no-op");
    }
}
