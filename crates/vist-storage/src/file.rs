//! Durable file-backed pager.
//!
//! Layout: page 0 is a header (magic, format version, page size, free-list
//! head, high-water mark). Freed pages form an intrusive linked list: the
//! first four bytes of a free page hold the id of the next free page. This
//! mirrors the classic Berkeley-DB-style store the paper builds on.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::pager::check_page_size;
use crate::{Error, IoStats, PageId, Pager, Result, INVALID_PAGE};

const MAGIC: &[u8; 8] = b"VISTPG01";
const HDR_MAGIC: usize = 0;
const HDR_PAGE_SIZE: usize = 8;
const HDR_FREE_HEAD: usize = 12;
const HDR_HIGH_WATER: usize = 16;
const HDR_LIVE: usize = 20;
const HDR_LEN: usize = 28;

/// A [`Pager`] persisting pages to a file.
pub struct FilePager {
    file: File,
    page_size: usize,
    free_head: PageId,
    /// Next never-allocated page id (page 0 is the header).
    high_water: PageId,
    live: u64,
    header_dirty: bool,
    stats: IoStats,
}

impl FilePager {
    /// Create a new store at `path`, truncating any existing file.
    pub fn create<P: AsRef<Path>>(path: P, page_size: usize) -> Result<Self> {
        check_page_size(page_size)?;
        if page_size < HDR_LEN {
            return Err(Error::BadPageSize(page_size));
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut pager = FilePager {
            file,
            page_size,
            free_head: INVALID_PAGE,
            high_water: 1,
            live: 0,
            header_dirty: true,
            stats: IoStats::default(),
        };
        pager.write_header()?;
        Ok(pager)
    }

    /// Open an existing store, validating its header.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut hdr = [0u8; HDR_LEN];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut hdr)?;
        if &hdr[HDR_MAGIC..HDR_MAGIC + 8] != MAGIC {
            return Err(Error::Corrupt("bad magic".into()));
        }
        let page_size =
            u32::from_le_bytes(hdr[HDR_PAGE_SIZE..HDR_PAGE_SIZE + 4].try_into().unwrap()) as usize;
        check_page_size(page_size).map_err(|_| Error::Corrupt("bad page size in header".into()))?;
        let free_head =
            PageId::from_le_bytes(hdr[HDR_FREE_HEAD..HDR_FREE_HEAD + 4].try_into().unwrap());
        let high_water =
            PageId::from_le_bytes(hdr[HDR_HIGH_WATER..HDR_HIGH_WATER + 4].try_into().unwrap());
        let live = u64::from_le_bytes(hdr[HDR_LIVE..HDR_LIVE + 8].try_into().unwrap());
        if high_water == 0 {
            return Err(Error::Corrupt("zero high-water mark".into()));
        }
        Ok(FilePager {
            file,
            page_size,
            free_head,
            high_water,
            live,
            header_dirty: false,
            stats: IoStats::default(),
        })
    }

    fn write_header(&mut self) -> Result<()> {
        let mut hdr = vec![0u8; self.page_size.min(256)];
        hdr[HDR_MAGIC..HDR_MAGIC + 8].copy_from_slice(MAGIC);
        hdr[HDR_PAGE_SIZE..HDR_PAGE_SIZE + 4]
            .copy_from_slice(&(self.page_size as u32).to_le_bytes());
        hdr[HDR_FREE_HEAD..HDR_FREE_HEAD + 4].copy_from_slice(&self.free_head.to_le_bytes());
        hdr[HDR_HIGH_WATER..HDR_HIGH_WATER + 4].copy_from_slice(&self.high_water.to_le_bytes());
        hdr[HDR_LIVE..HDR_LIVE + 8].copy_from_slice(&self.live.to_le_bytes());
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(&hdr)?;
        self.header_dirty = false;
        Ok(())
    }

    fn offset(&self, id: PageId) -> u64 {
        u64::from(id) * self.page_size as u64
    }

    fn check_id(&self, id: PageId) -> Result<()> {
        if id == 0 || id >= self.high_water {
            return Err(Error::InvalidPage(u64::from(id)));
        }
        Ok(())
    }
}

impl Pager for FilePager {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn allocate(&mut self) -> Result<PageId> {
        self.stats.allocations += 1;
        self.live += 1;
        self.header_dirty = true;
        if self.free_head != INVALID_PAGE {
            let id = self.free_head;
            // The free page's first four bytes link to the next free page.
            let mut link = [0u8; 4];
            self.file.seek(SeekFrom::Start(self.offset(id)))?;
            self.file.read_exact(&mut link)?;
            self.free_head = PageId::from_le_bytes(link);
            // Zero the page for the caller.
            let zero = vec![0u8; self.page_size];
            self.file.seek(SeekFrom::Start(self.offset(id)))?;
            self.file.write_all(&zero)?;
            return Ok(id);
        }
        let id = self.high_water;
        if id == INVALID_PAGE {
            return Err(Error::Corrupt("page id space exhausted".into()));
        }
        self.high_water += 1;
        // Extend the file so reads of the fresh page see zeroes.
        let zero = vec![0u8; self.page_size];
        self.file.seek(SeekFrom::Start(self.offset(id)))?;
        self.file.write_all(&zero)?;
        Ok(id)
    }

    fn free(&mut self, id: PageId) -> Result<()> {
        self.check_id(id)?;
        self.file.seek(SeekFrom::Start(self.offset(id)))?;
        self.file.write_all(&self.free_head.to_le_bytes())?;
        self.free_head = id;
        self.live = self.live.saturating_sub(1);
        self.header_dirty = true;
        self.stats.frees += 1;
        Ok(())
    }

    fn read(&mut self, id: PageId, buf: &mut [u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), self.page_size);
        self.check_id(id)?;
        self.file.seek(SeekFrom::Start(self.offset(id)))?;
        self.file.read_exact(buf)?;
        self.stats.reads += 1;
        Ok(())
    }

    fn write(&mut self, id: PageId, buf: &[u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), self.page_size);
        self.check_id(id)?;
        self.file.seek(SeekFrom::Start(self.offset(id)))?;
        self.file.write_all(buf)?;
        self.stats.writes += 1;
        Ok(())
    }

    fn live_pages(&self) -> u64 {
        self.live
    }

    fn store_bytes(&self) -> u64 {
        u64::from(self.high_water) * self.page_size as u64
    }

    fn sync(&mut self) -> Result<()> {
        if self.header_dirty {
            self.write_header()?;
        }
        self.file.sync_data()?;
        Ok(())
    }

    fn stats(&self) -> IoStats {
        self.stats
    }
}

impl Drop for FilePager {
    fn drop(&mut self) {
        if self.header_dirty {
            let _ = self.write_header();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("vist-storage-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn create_write_reopen_read() {
        let path = tmp("reopen");
        let id;
        {
            let mut p = FilePager::create(&path, 256).unwrap();
            id = p.allocate().unwrap();
            let mut buf = vec![0u8; 256];
            buf[10] = 0x5A;
            p.write(id, &buf).unwrap();
            p.sync().unwrap();
        }
        {
            let mut p = FilePager::open(&path).unwrap();
            assert_eq!(p.page_size(), 256);
            assert_eq!(p.live_pages(), 1);
            let mut out = vec![0u8; 256];
            p.read(id, &mut out).unwrap();
            assert_eq!(out[10], 0x5A);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn free_list_survives_reopen() {
        let path = tmp("freelist");
        let (a, b);
        {
            let mut p = FilePager::create(&path, 256).unwrap();
            a = p.allocate().unwrap();
            b = p.allocate().unwrap();
            p.free(a).unwrap();
            p.sync().unwrap();
        }
        {
            let mut p = FilePager::open(&path).unwrap();
            let c = p.allocate().unwrap();
            assert_eq!(c, a, "freed page is recycled after reopen");
            let d = p.allocate().unwrap();
            assert!(d != a && d != b, "next allocation extends the file");
            // Recycled page must read as zeroes (the free-list link is wiped).
            let mut out = vec![0xEEu8; 256];
            p.read(c, &mut out).unwrap();
            assert!(out.iter().all(|&x| x == 0));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn header_page_not_addressable() {
        let path = tmp("header");
        let mut p = FilePager::create(&path, 256).unwrap();
        assert!(p.read(0, &mut vec![0u8; 256]).is_err());
        assert!(p.write(0, &vec![0u8; 256]).is_err());
        assert!(p.free(0).is_err());
        drop(p);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_garbage() {
        let path = tmp("garbage");
        std::fs::write(&path, b"this is not a vist store, not at all....").unwrap();
        assert!(matches!(FilePager::open(&path), Err(Error::Corrupt(_))));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn store_bytes_grows_with_allocations() {
        let path = tmp("bytes");
        let mut p = FilePager::create(&path, 256).unwrap();
        let base = p.store_bytes();
        p.allocate().unwrap();
        p.allocate().unwrap();
        assert_eq!(p.store_bytes(), base + 512);
        drop(p);
        std::fs::remove_file(&path).unwrap();
    }
}
