//! Slotted-page layout for variable-length records.
//!
//! A slotted region lives inside a page buffer, after a caller-reserved
//! header area (`base` bytes — the B+Tree keeps its node header there).
//!
//! ```text
//! base +0   u16  slot count (n)
//!      +2   u16  cell_start: offset (from base) of the lowest cell byte
//!      +4   u16  live bytes: sum of live cell lengths (for defrag math)
//!      +6   slot directory, 4 bytes per slot: [cell offset u16][cell len u16]
//!      ...  free space ...
//!      cell_start .. region end: cells, allocated from the top down
//! ```
//!
//! Removal leaves holes that are reclaimed by an automatic defragmentation
//! pass when an insert needs the space. Slot indices are *positional*:
//! inserting at slot `i` shifts later slots up, exactly what a sorted B+Tree
//! node needs.

use crate::{Error, Result};

/// Index of a record within a page.
pub type SlotId = u16;

const H_NSLOTS: usize = 0;
const H_CELL_START: usize = 2;
const H_LIVE: usize = 4;
const HDR: usize = 6;
const SLOT: usize = 4;

/// Read-only view of a slotted region.
pub struct SlottedPage<'a> {
    buf: &'a [u8],
    base: usize,
}

/// Mutable view of a slotted region.
pub struct SlottedPageMut<'a> {
    buf: &'a mut [u8],
    base: usize,
}

fn get_u16(buf: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([buf[at], buf[at + 1]])
}

fn put_u16(buf: &mut [u8], at: usize, v: u16) {
    buf[at..at + 2].copy_from_slice(&v.to_le_bytes());
}

macro_rules! shared_impl {
    ($ty:ident) => {
        impl<'a> $ty<'a> {
            /// Number of records on the page.
            #[must_use]
            pub fn slot_count(&self) -> u16 {
                get_u16(self.buf, self.base + H_NSLOTS)
            }

            fn cell_start(&self) -> usize {
                get_u16(self.buf, self.base + H_CELL_START) as usize
            }

            fn live_bytes(&self) -> usize {
                get_u16(self.buf, self.base + H_LIVE) as usize
            }

            fn region_len(&self) -> usize {
                self.buf.len() - self.base
            }

            fn slot_at(&self, i: SlotId) -> (usize, usize) {
                let at = self.base + HDR + (i as usize) * SLOT;
                (
                    get_u16(self.buf, at) as usize,
                    get_u16(self.buf, at + 2) as usize,
                )
            }

            /// Contiguous free bytes between the slot directory and cells.
            #[must_use]
            pub fn contiguous_free(&self) -> usize {
                let dir_end = HDR + self.slot_count() as usize * SLOT;
                self.cell_start().saturating_sub(dir_end)
            }

            /// Free bytes recoverable by defragmentation (total usable).
            #[must_use]
            pub fn total_free(&self) -> usize {
                let dir_end = HDR + self.slot_count() as usize * SLOT;
                self.region_len() - dir_end - self.live_bytes()
            }
        }
    };
}

shared_impl!(SlottedPage);
shared_impl!(SlottedPageMut);

fn check_slot(count: u16, i: SlotId) -> Result<()> {
    if i >= count {
        return Err(Error::Corrupt(format!(
            "slot {i} out of range ({count} slots)"
        )));
    }
    Ok(())
}

impl<'a> SlottedPage<'a> {
    /// View an already-initialized slotted region starting `base` bytes into
    /// `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8], base: usize) -> Self {
        debug_assert!(buf.len() >= base + HDR);
        SlottedPage { buf, base }
    }

    /// The record stored in slot `i`. The returned slice borrows the page
    /// buffer (not this view), so it outlives the `SlottedPage` value.
    pub fn cell(&self, i: SlotId) -> Result<&'a [u8]> {
        check_slot(self.slot_count(), i)?;
        let (off, len) = self.slot_at(i);
        Ok(&self.buf[self.base + off..self.base + off + len])
    }
}

impl<'a> SlottedPageMut<'a> {
    /// View an already-initialized slotted region.
    #[must_use]
    pub fn new(buf: &'a mut [u8], base: usize) -> Self {
        debug_assert!(buf.len() >= base + HDR);
        SlottedPageMut { buf, base }
    }

    /// The record stored in slot `i`.
    pub fn cell(&self, i: SlotId) -> Result<&[u8]> {
        check_slot(self.slot_count(), i)?;
        let (off, len) = self.slot_at(i);
        Ok(&self.buf[self.base + off..self.base + off + len])
    }

    /// Initialize an empty slotted region (erases all records).
    pub fn init(buf: &'a mut [u8], base: usize) -> Self {
        debug_assert!(buf.len() >= base + HDR + SLOT);
        // cell_start == region_len means "no cells yet"; region_len is at
        // most 65530 for a 64 KiB page with base >= 6, so it fits in u16.
        let region_len = buf.len() - base;
        let page = SlottedPageMut { buf, base };
        put_u16(page.buf, base + H_NSLOTS, 0);
        put_u16(page.buf, base + H_LIVE, 0);
        put_u16(page.buf, base + H_CELL_START, region_len as u16);
        page
    }

    fn set_slot(&mut self, i: SlotId, off: usize, len: usize) {
        let at = self.base + HDR + (i as usize) * SLOT;
        put_u16(self.buf, at, off as u16);
        put_u16(self.buf, at + 2, len as u16);
    }

    /// Insert `data` as a new record at positional slot `i`, shifting later
    /// slots up. Defragments if needed; errors if the record cannot fit.
    pub fn insert(&mut self, i: SlotId, data: &[u8]) -> Result<()> {
        let n = self.slot_count();
        if i > n {
            return Err(Error::Corrupt(format!("insert slot {i} > count {n}")));
        }
        let needed = SLOT + data.len();
        if needed > self.total_free() {
            return Err(Error::PageOverflow {
                requested: needed,
                available: self.total_free(),
            });
        }
        if needed > self.contiguous_free() {
            self.defragment();
        }
        debug_assert!(needed <= self.contiguous_free());
        // Allocate the cell from the top of free space.
        let new_start = self.cell_start() - data.len();
        self.buf[self.base + new_start..self.base + new_start + data.len()].copy_from_slice(data);
        // Shift the slot directory.
        let dir_from = self.base + HDR + (i as usize) * SLOT;
        let dir_to = self.base + HDR + (n as usize) * SLOT;
        self.buf.copy_within(dir_from..dir_to, dir_from + SLOT);
        self.set_slot(i, new_start, data.len());
        put_u16(self.buf, self.base + H_NSLOTS, n + 1);
        put_u16(self.buf, self.base + H_CELL_START, new_start as u16);
        let live = self.live_bytes() + data.len();
        put_u16(self.buf, self.base + H_LIVE, live as u16);
        Ok(())
    }

    /// Remove the record at slot `i`, shifting later slots down.
    pub fn remove(&mut self, i: SlotId) -> Result<()> {
        let n = self.slot_count();
        if i >= n {
            return Err(Error::Corrupt(format!("remove slot {i} >= count {n}")));
        }
        let (_, len) = self.slot_at(i);
        let dir_from = self.base + HDR + (i as usize + 1) * SLOT;
        let dir_to = self.base + HDR + (n as usize) * SLOT;
        self.buf.copy_within(dir_from..dir_to, dir_from - SLOT);
        put_u16(self.buf, self.base + H_NSLOTS, n - 1);
        let live = self.live_bytes() - len;
        put_u16(self.buf, self.base + H_LIVE, live as u16);
        Ok(())
    }

    /// Replace the record at slot `i` with `data`.
    pub fn replace(&mut self, i: SlotId, data: &[u8]) -> Result<()> {
        let n = self.slot_count();
        if i >= n {
            return Err(Error::Corrupt(format!("replace slot {i} >= count {n}")));
        }
        let (off, len) = self.slot_at(i);
        if data.len() <= len {
            // Overwrite in place; the tail of the old cell becomes a hole.
            self.buf[self.base + off..self.base + off + data.len()].copy_from_slice(data);
            self.set_slot(i, off, data.len());
            let live = self.live_bytes() - len + data.len();
            put_u16(self.buf, self.base + H_LIVE, live as u16);
            return Ok(());
        }
        let extra = data.len() - len;
        if extra > self.total_free() {
            return Err(Error::PageOverflow {
                requested: extra,
                available: self.total_free(),
            });
        }
        self.remove(i)?;
        self.insert(i, data)
    }

    /// Compact all live cells to the top of the region, erasing holes.
    pub fn defragment(&mut self) {
        let n = self.slot_count();
        let region_len = self.region_len();
        // Gather cells (slot order preserved).
        let mut cells: Vec<(SlotId, Vec<u8>)> = Vec::with_capacity(n as usize);
        for i in 0..n {
            let (off, len) = self.slot_at(i);
            cells.push((i, self.buf[self.base + off..self.base + off + len].to_vec()));
        }
        let mut cursor = region_len;
        for (i, cell) in cells {
            cursor -= cell.len();
            self.buf[self.base + cursor..self.base + cursor + cell.len()].copy_from_slice(&cell);
            self.set_slot(i, cursor, cell.len());
        }
        put_u16(self.buf, self.base + H_CELL_START, cursor as u16);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(size: usize) -> Vec<u8> {
        vec![0u8; size]
    }

    #[test]
    fn insert_and_read_in_order() {
        let mut buf = page(256);
        let mut p = SlottedPageMut::init(&mut buf, 8);
        p.insert(0, b"bb").unwrap();
        p.insert(0, b"aa").unwrap();
        p.insert(2, b"cc").unwrap();
        assert_eq!(p.slot_count(), 3);
        assert_eq!(p.cell(0).unwrap(), b"aa");
        assert_eq!(p.cell(1).unwrap(), b"bb");
        assert_eq!(p.cell(2).unwrap(), b"cc");
        // Read-only view agrees.
        let _ = p;
        let r = SlottedPage::new(&buf, 8);
        assert_eq!(r.cell(1).unwrap(), b"bb");
    }

    #[test]
    fn remove_shifts_slots() {
        let mut buf = page(256);
        let mut p = SlottedPageMut::init(&mut buf, 0);
        for (i, s) in ["a", "b", "c", "d"].iter().enumerate() {
            p.insert(i as u16, s.as_bytes()).unwrap();
        }
        p.remove(1).unwrap();
        assert_eq!(p.slot_count(), 3);
        assert_eq!(p.cell(0).unwrap(), b"a");
        assert_eq!(p.cell(1).unwrap(), b"c");
        assert_eq!(p.cell(2).unwrap(), b"d");
    }

    #[test]
    fn defragment_reclaims_holes() {
        let mut buf = page(128);
        let mut p = SlottedPageMut::init(&mut buf, 0);
        // Fill with 10-byte records until full.
        let rec = [0x11u8; 10];
        let mut n = 0u16;
        while p.insert(n, &rec).is_ok() {
            n += 1;
        }
        assert!(n >= 8, "expected several records, got {n}");
        // Remove every other record, then a larger record must fit via defrag.
        let mut i = 0;
        while i < p.slot_count() {
            p.remove(i).unwrap();
            i += 1; // removing shifts, so this skips one
        }
        let big = [0x22u8; 24];
        p.insert(0, &big).unwrap();
        assert_eq!(p.cell(0).unwrap(), &big);
    }

    #[test]
    fn replace_grow_and_shrink() {
        let mut buf = page(128);
        let mut p = SlottedPageMut::init(&mut buf, 0);
        p.insert(0, b"xxxxxxxx").unwrap();
        p.insert(1, b"yy").unwrap();
        p.replace(0, b"z").unwrap();
        assert_eq!(p.cell(0).unwrap(), b"z");
        assert_eq!(p.cell(1).unwrap(), b"yy");
        p.replace(0, b"wwwwwwwwwwwwwwww").unwrap();
        assert_eq!(p.cell(0).unwrap(), b"wwwwwwwwwwwwwwww");
        assert_eq!(p.cell(1).unwrap(), b"yy");
    }

    #[test]
    fn overflow_is_detected() {
        let mut buf = page(128);
        let mut p = SlottedPageMut::init(&mut buf, 0);
        let too_big = vec![0u8; 200];
        assert!(matches!(
            p.insert(0, &too_big),
            Err(Error::PageOverflow { .. })
        ));
        // Page still usable.
        p.insert(0, b"ok").unwrap();
        assert_eq!(p.cell(0).unwrap(), b"ok");
    }

    #[test]
    fn out_of_range_slots_error() {
        let mut buf = page(128);
        let mut p = SlottedPageMut::init(&mut buf, 0);
        assert!(p.cell(0).is_err());
        assert!(p.remove(0).is_err());
        assert!(p.replace(0, b"x").is_err());
        assert!(p.insert(1, b"x").is_err());
    }

    #[test]
    fn stress_random_ops_match_vec_model() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut buf = page(1024);
        let mut p = SlottedPageMut::init(&mut buf, 16);
        let mut model: Vec<Vec<u8>> = Vec::new();
        let mut seed = 0xDEADBEEFu64;
        let mut rnd = move || {
            let mut h = DefaultHasher::new();
            seed.hash(&mut h);
            seed = h.finish();
            seed
        };
        for step in 0..2000 {
            let r = rnd();
            let op = r % 3;
            if op < 2 || model.is_empty() {
                let len = (r >> 8) as usize % 20 + 1;
                let byte = (step % 251) as u8;
                let data = vec![byte; len];
                let at = (r >> 16) as usize % (model.len() + 1);
                match p.insert(at as u16, &data) {
                    Ok(()) => model.insert(at, data),
                    Err(Error::PageOverflow { .. }) => {
                        // Model must agree that it's nearly full.
                        let used: usize = model.iter().map(|c| c.len() + 4).sum();
                        assert!(used + data.len() + 4 + 6 > 1024 - 16);
                    }
                    Err(e) => panic!("unexpected: {e}"),
                }
            } else {
                let at = (r >> 16) as usize % model.len();
                p.remove(at as u16).unwrap();
                model.remove(at);
            }
            assert_eq!(p.slot_count() as usize, model.len());
            for (i, cell) in model.iter().enumerate() {
                assert_eq!(p.cell(i as u16).unwrap(), &cell[..], "step {step}");
            }
        }
    }
}
