//! Versioned segment manifest: which immutable segment files are live.
//!
//! The tiered index keeps its mutable delta in the main store file and an
//! ordered list of immutable segment files next to it. The manifest names
//! the live segments, so publishing or retiring a segment is a single
//! atomic manifest update — the segment files themselves are written
//! completely (and fsync'd) *before* the manifest ever points at them.
//!
//! # On-disk format
//!
//! `<store>.manifest` holds **two fixed-size slots** (A/B). Each slot is:
//!
//! ```text
//! magic "VISTMAN1" | generation u64 | delta_epoch u64 |
//! seg_count u32 | segment ids (u64 × seg_count) | crc32c u32
//! ```
//!
//! all little-endian, CRC32C over every preceding byte of the slot. A
//! write targets the slot `generation % 2` and fsyncs; the other slot
//! still holds the previous generation. On load both slots are decoded
//! and the valid slot with the highest generation wins. A torn write can
//! only corrupt the slot being written, so the previous manifest always
//! survives — the update is atomic without needing `rename`, which the
//! [`Vfs`] seam deliberately does not expose.
//!
//! A missing manifest file (or one where no slot decodes, which is what a
//! crash during the very first write leaves behind) means "no segments":
//! stores created before tiering existed open unchanged.

use std::io;
use std::path::{Path, PathBuf};

use crate::crc::crc32c;
use crate::error::{Error, Result};
use crate::vfs::{OpenMode, Vfs};

const MAGIC: &[u8; 8] = b"VISTMAN1";

/// Fixed byte size of one manifest slot; the file is exactly two slots.
pub const MANIFEST_SLOT_SIZE: usize = 4096;

/// Fixed header bytes before the segment-id list: magic + generation +
/// delta_epoch + seg_count.
const SLOT_HDR: usize = 8 + 8 + 8 + 4;

/// Most segment ids one slot can carry (the trailing 4 bytes are CRC).
pub const MAX_MANIFEST_SEGMENTS: usize = (MANIFEST_SLOT_SIZE - SLOT_HDR - 4) / 8;

/// The live-segment list of a tiered store, plus the two counters that
/// make segment publication and delta truncation crash-safe.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Monotone version of the manifest itself; also selects the slot
    /// (`generation % 2`) so consecutive writes alternate slots.
    pub generation: u64,
    /// Monotone epoch of the mutable delta. Compaction bumps this *in the
    /// manifest first*, then truncates the delta and records the same
    /// epoch in the delta's metadata; recovery re-runs the truncation
    /// when the manifest's epoch is ahead of the delta's.
    pub delta_epoch: u64,
    /// Live segment ids, oldest first. Queries read newest-to-oldest on
    /// top of the delta.
    pub segments: Vec<u64>,
}

impl Manifest {
    /// Sidecar path of the manifest for store file `base`:
    /// `<base>.manifest`.
    pub fn path_for<P: AsRef<Path>>(base: P) -> PathBuf {
        let mut os = base.as_ref().as_os_str().to_os_string();
        os.push(".manifest");
        PathBuf::from(os)
    }

    /// Sidecar path of segment `id` for store file `base`:
    /// `<base>.seg-<id>`.
    pub fn segment_path<P: AsRef<Path>>(base: P, id: u64) -> PathBuf {
        let mut os = base.as_ref().as_os_str().to_os_string();
        os.push(format!(".seg-{id}"));
        PathBuf::from(os)
    }

    fn encode_slot(&self) -> Result<Vec<u8>> {
        if self.segments.len() > MAX_MANIFEST_SEGMENTS {
            return Err(Error::Corrupt(format!(
                "manifest lists {} segments (max {MAX_MANIFEST_SEGMENTS})",
                self.segments.len()
            )));
        }
        let mut buf = vec![0u8; MANIFEST_SLOT_SIZE];
        buf[0..8].copy_from_slice(MAGIC);
        buf[8..16].copy_from_slice(&self.generation.to_le_bytes());
        buf[16..24].copy_from_slice(&self.delta_epoch.to_le_bytes());
        buf[24..28].copy_from_slice(&(self.segments.len() as u32).to_le_bytes());
        let mut at = SLOT_HDR;
        for id in &self.segments {
            buf[at..at + 8].copy_from_slice(&id.to_le_bytes());
            at += 8;
        }
        let crc = crc32c(&buf[..at]);
        buf[at..at + 4].copy_from_slice(&crc.to_le_bytes());
        Ok(buf)
    }

    fn decode_slot(buf: &[u8]) -> Option<Manifest> {
        if buf.len() < SLOT_HDR + 4 || &buf[0..8] != MAGIC {
            return None;
        }
        let generation = u64::from_le_bytes(buf[8..16].try_into().ok()?);
        let delta_epoch = u64::from_le_bytes(buf[16..24].try_into().ok()?);
        let count = u32::from_le_bytes(buf[24..28].try_into().ok()?) as usize;
        if count > MAX_MANIFEST_SEGMENTS {
            return None;
        }
        let end = SLOT_HDR + count * 8;
        let stored = u32::from_le_bytes(buf[end..end + 4].try_into().ok()?);
        if crc32c(&buf[..end]) != stored {
            return None;
        }
        let segments = (0..count)
            .map(|i| {
                let at = SLOT_HDR + i * 8;
                u64::from_le_bytes(buf[at..at + 8].try_into().unwrap())
            })
            .collect();
        Some(Manifest {
            generation,
            delta_epoch,
            segments,
        })
    }

    /// Load the manifest next to store file `base`. `Ok(None)` when the
    /// manifest file does not exist **or** exists but no slot decodes
    /// (a crash during the very first write) — both mean "no segments".
    pub fn load(vfs: &dyn Vfs, base: &Path) -> Result<Option<Manifest>> {
        let path = Self::path_for(base);
        let mut file = match vfs.open(&path, OpenMode::MustExist) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(Error::Io(e)),
        };
        let len = file.len().map_err(Error::Io)?;
        let mut best: Option<Manifest> = None;
        for slot in 0..2u64 {
            let off = slot * MANIFEST_SLOT_SIZE as u64;
            if off + MANIFEST_SLOT_SIZE as u64 > len {
                continue; // slot never written (short file)
            }
            let mut buf = vec![0u8; MANIFEST_SLOT_SIZE];
            if file.read_at(off, &mut buf).is_err() {
                continue;
            }
            if let Some(m) = Self::decode_slot(&buf) {
                if best.as_ref().is_none_or(|b| m.generation > b.generation) {
                    best = Some(m);
                }
            }
        }
        Ok(best)
    }

    /// Durably publish this manifest next to store file `base`: write the
    /// slot `generation % 2`, fsync the file, and fsync the parent
    /// directory (a freshly created manifest is not durable until its
    /// directory entry is). The other slot — the previous generation — is
    /// untouched, so a crash anywhere in here leaves the old manifest
    /// loadable.
    pub fn store(&self, vfs: &dyn Vfs, base: &Path) -> Result<()> {
        let path = Self::path_for(base);
        let slot = self.encode_slot()?;
        let mut file = vfs.open(&path, OpenMode::OpenOrCreate).map_err(Error::Io)?;
        let off = (self.generation % 2) * MANIFEST_SLOT_SIZE as u64;
        file.write_at(off, &slot).map_err(Error::Io)?;
        file.sync().map_err(Error::Io)?;
        vfs.sync_parent_dir(&path).map_err(Error::Io)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;
    use crate::vfs::RealVfs;

    fn mk(gen: u64, epoch: u64, segs: &[u64]) -> Manifest {
        Manifest {
            generation: gen,
            delta_epoch: epoch,
            segments: segs.to_vec(),
        }
    }

    #[test]
    fn absent_manifest_loads_as_none() {
        let dir = TempDir::new("manifest-absent");
        assert_eq!(Manifest::load(&RealVfs, &dir.file("store")).unwrap(), None);
    }

    #[test]
    fn store_load_round_trip_and_generations_alternate() {
        let dir = TempDir::new("manifest-roundtrip");
        let base = dir.file("store");
        let m1 = mk(1, 1, &[7]);
        m1.store(&RealVfs, &base).unwrap();
        assert_eq!(Manifest::load(&RealVfs, &base).unwrap(), Some(m1.clone()));

        let m2 = mk(2, 1, &[7, 9]);
        m2.store(&RealVfs, &base).unwrap();
        assert_eq!(Manifest::load(&RealVfs, &base).unwrap(), Some(m2.clone()));

        // Both slots are now populated; the higher generation wins even
        // though it lives in the "first" slot byte-wise.
        let m3 = mk(3, 2, &[9]);
        m3.store(&RealVfs, &base).unwrap();
        assert_eq!(Manifest::load(&RealVfs, &base).unwrap(), Some(m3));
    }

    #[test]
    fn torn_write_falls_back_to_previous_generation() {
        let dir = TempDir::new("manifest-torn");
        let base = dir.file("store");
        let m1 = mk(1, 1, &[4]);
        m1.store(&RealVfs, &base).unwrap();

        // Corrupt the slot generation 2 would target (slot 0) mid-write:
        // a plausible torn prefix of a new slot image.
        let path = Manifest::path_for(&base);
        let mut bytes = std::fs::read(&path).unwrap();
        if bytes.len() < 2 * MANIFEST_SLOT_SIZE {
            bytes.resize(2 * MANIFEST_SLOT_SIZE, 0);
        }
        bytes[0..8].copy_from_slice(b"VISTMAN1");
        bytes[8..16].copy_from_slice(&2u64.to_le_bytes());
        // ... and nothing else of the slot: CRC check must reject it.
        std::fs::write(&path, &bytes).unwrap();

        assert_eq!(Manifest::load(&RealVfs, &base).unwrap(), Some(m1));
    }

    #[test]
    fn fully_torn_first_write_means_no_segments() {
        let dir = TempDir::new("manifest-first-torn");
        let base = dir.file("store");
        // A crash during the first-ever store can leave a short garbage
        // file; that must read as "no manifest", not an error.
        std::fs::write(Manifest::path_for(&base), b"VISTMAN1\x01\x02").unwrap();
        assert_eq!(Manifest::load(&RealVfs, &base).unwrap(), None);
    }

    #[test]
    fn segment_list_capacity_is_enforced() {
        let dir = TempDir::new("manifest-cap");
        let base = dir.file("store");
        let too_many = mk(1, 0, &vec![0u64; MAX_MANIFEST_SEGMENTS + 1]);
        assert!(too_many.store(&RealVfs, &base).is_err());
        let max = mk(1, 0, &vec![3u64; MAX_MANIFEST_SEGMENTS]);
        max.store(&RealVfs, &base).unwrap();
        assert_eq!(
            Manifest::load(&RealVfs, &base)
                .unwrap()
                .unwrap()
                .segments
                .len(),
            MAX_MANIFEST_SEGMENTS
        );
    }

    #[test]
    fn paths_are_sidecars_of_the_store_file() {
        assert_eq!(
            Manifest::path_for("/x/store"),
            PathBuf::from("/x/store.manifest")
        );
        assert_eq!(
            Manifest::segment_path("/x/store", 12),
            PathBuf::from("/x/store.seg-12")
        );
    }
}
