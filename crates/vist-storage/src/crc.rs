//! CRC32C (Castagnoli) checksums, used for page trailers and WAL records.
//!
//! Table-driven software implementation (the container has no external
//! crates; hardware CRC would need `sse4.2`/`crc` intrinsics and buys
//! nothing at our page sizes). The Castagnoli polynomial is the one used by
//! iSCSI, ext4 and Btrfs metadata — better error-detection properties for
//! short messages than CRC32 (IEEE).

/// Reflected CRC32C polynomial.
const POLY: u32 = 0x82F6_3B78;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            j += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Incremental CRC32C state, for checksumming non-contiguous inputs
/// without copying them into one buffer.
#[derive(Debug, Clone, Copy)]
pub struct Crc32c(u32);

impl Crc32c {
    /// Fresh state.
    #[must_use]
    pub fn new() -> Self {
        Crc32c(0xFFFF_FFFF)
    }

    /// Fold `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) -> &mut Self {
        let mut crc = self.0;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
        }
        self.0 = crc;
        self
    }

    /// The final checksum value.
    #[must_use]
    pub fn finish(&self) -> u32 {
        !self.0
    }
}

impl Default for Crc32c {
    fn default() -> Self {
        Self::new()
    }
}

/// CRC32C of a single buffer.
#[must_use]
pub fn crc32c(bytes: &[u8]) -> u32 {
    let mut c = Crc32c::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 test vectors for CRC32C.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        assert_eq!(crc32c(b""), 0);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in 0..data.len() {
            let mut c = Crc32c::new();
            c.update(&data[..split]).update(&data[split..]);
            assert_eq!(c.finish(), crc32c(data), "split at {split}");
        }
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let mut data = vec![0xA5u8; 512];
        let base = crc32c(&data);
        for bit in [0usize, 7, 2048, 4095] {
            data[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32c(&data), base, "bit {bit}");
            data[bit / 8] ^= 1 << (bit % 8);
        }
        assert_eq!(crc32c(&data), base);
    }
}
