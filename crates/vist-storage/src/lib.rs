//! Paged storage substrate for the ViST index family.
//!
//! The SIGMOD 2003 ViST paper implements its B+Trees on top of the Berkeley
//! DB library. This crate is the from-scratch replacement for that substrate:
//! a page-oriented storage layer with
//!
//! * a [`Pager`] abstraction over fixed-size pages, with an in-memory
//!   implementation ([`MemPager`]) and a durable file-backed implementation
//!   ([`FilePager`]) that maintains a free list and a typed header page,
//! * a [`BufferPool`] that caches pages with CLOCK eviction, pin counting and
//!   dirty-page write-back,
//! * a [`SlottedPage`] layout for variable-length records, used by
//!   `vist-btree` for its node format, and
//! * a crash-safety layer: [`FilePager`] routes every write through a
//!   checksummed write-ahead log, [`Pager::sync`] is an atomic checkpoint,
//!   [`FilePager::open`] replays committed log records left by a crash, and
//!   every page carries a CRC32C trailer verified on read. A crash at *any*
//!   instruction leaves the store equal to its last completed checkpoint —
//!   a property exercised exhaustively by the [`FaultVfs`]/[`FaultPager`]
//!   fault-injection harness (see `docs/DURABILITY.md`).
//!
//! The layer is deliberately small but complete: everything the B+Tree needs
//! (allocation, free, ordered growth, durable checkpoints, recovery, I/O
//! statistics) is here, and nothing else.
//!
//! # Example
//!
//! ```
//! use vist_storage::{BufferPool, MemPager, PageId};
//!
//! let pool = BufferPool::with_capacity(MemPager::new(4096), 64);
//! let pid = pool.allocate().unwrap();
//! {
//!     let mut page = pool.fetch_mut(pid).unwrap();
//!     page.data_mut()[0..4].copy_from_slice(&42u32.to_le_bytes());
//! }
//! let page = pool.fetch(pid).unwrap();
//! assert_eq!(u32::from_le_bytes(page.data()[0..4].try_into().unwrap()), 42);
//! ```

mod buffer;
mod crc;
mod error;
mod fault;
mod file;
mod manifest;
mod mem;
mod pager;
mod slotted;
mod stats;
pub mod sync;
#[doc(hidden)]
pub mod testutil;
mod vfs;
mod wal;

pub use buffer::{BufferPool, PageRef, PageRefMut, PoolStats, ShardStats};
pub use crc::{crc32c, Crc32c};
pub use error::{Error, Result};
pub use fault::{is_injected, FaultHandle, FaultMode, FaultPager, FaultVfs};
pub use file::{FilePager, PAGE_TRAILER};
pub use manifest::{Manifest, MANIFEST_SLOT_SIZE, MAX_MANIFEST_SEGMENTS};
pub use mem::MemPager;
pub use pager::{PageId, Pager, INVALID_PAGE};
pub use slotted::{SlotId, SlottedPage, SlottedPageMut};
pub use stats::IoStats;
pub use vfs::{OpenMode, RealVfs, VFile, Vfs};

/// Register this crate's observability metrics with the global
/// `vist-obs` registry so they appear in expositions even before the
/// code paths that record them have run. Idempotent; called by
/// [`BufferPool::with_capacity`] and the [`FilePager`] constructors.
pub fn register_metrics() {
    let _ = vist_obs::counter!("vist_storage_pool_hit_total");
    let _ = vist_obs::counter!("vist_storage_pool_miss_total");
    let _ = vist_obs::counter!("vist_storage_write_back_total");
    let _ = vist_obs::counter!("vist_storage_wal_append_total");
    let _ = vist_obs::counter!("vist_storage_wal_commit_total");
    let _ = vist_obs::counter!("vist_storage_recovered_pages_total");
    let _ = vist_obs::gauge!("vist_storage_store_bytes");
    let _ = vist_obs::histogram!("vist_storage_page_read_nanos");
    let _ = vist_obs::histogram!("vist_storage_page_write_nanos");
    let _ = vist_obs::histogram!("vist_storage_wal_append_nanos");
    let _ = vist_obs::histogram!("vist_storage_checkpoint_nanos");
    let _ = vist_obs::histogram!("vist_storage_recovery_nanos");
}

/// Default page size, in bytes. The paper uses 2 KiB Berkeley DB pages; we
/// default to 4 KiB (a modern filesystem block) and expose the size as a
/// constructor parameter everywhere so the paper's setting is reproducible
/// (see the `ablation_pagesize` bench).
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// Smallest page size the slotted layout supports.
pub const MIN_PAGE_SIZE: usize = 128;

/// Largest supported page size (fits slot offsets in `u16`).
pub const MAX_PAGE_SIZE: usize = 1 << 16;
