//! Paged storage substrate for the ViST index family.
//!
//! The SIGMOD 2003 ViST paper implements its B+Trees on top of the Berkeley
//! DB library. This crate is the from-scratch replacement for that substrate:
//! a page-oriented storage layer with
//!
//! * a [`Pager`] abstraction over fixed-size pages, with an in-memory
//!   implementation ([`MemPager`]) and a durable file-backed implementation
//!   ([`FilePager`]) that maintains a free list and a typed header page,
//! * a [`BufferPool`] that caches pages with CLOCK eviction, pin counting and
//!   dirty-page write-back, and
//! * a [`SlottedPage`] layout for variable-length records, used by
//!   `vist-btree` for its node format.
//!
//! The layer is deliberately small but complete: everything the B+Tree needs
//! (allocation, free, ordered growth, crash-consistent-ish flush, I/O
//! statistics) is here, and nothing else.
//!
//! # Example
//!
//! ```
//! use vist_storage::{BufferPool, MemPager, PageId};
//!
//! let pool = BufferPool::with_capacity(MemPager::new(4096), 64);
//! let pid = pool.allocate().unwrap();
//! {
//!     let mut page = pool.fetch_mut(pid).unwrap();
//!     page.data_mut()[0..4].copy_from_slice(&42u32.to_le_bytes());
//! }
//! let page = pool.fetch(pid).unwrap();
//! assert_eq!(u32::from_le_bytes(page.data()[0..4].try_into().unwrap()), 42);
//! ```

mod buffer;
mod error;
mod file;
mod mem;
mod pager;
mod slotted;
mod stats;
pub mod sync;

pub use buffer::{BufferPool, PageRef, PageRefMut, PoolStats, ShardStats};
pub use error::{Error, Result};
pub use file::FilePager;
pub use mem::MemPager;
pub use pager::{PageId, Pager, INVALID_PAGE};
pub use slotted::{SlotId, SlottedPage, SlottedPageMut};
pub use stats::IoStats;

/// Default page size, in bytes. The paper uses 2 KiB Berkeley DB pages; we
/// default to 4 KiB (a modern filesystem block) and expose the size as a
/// constructor parameter everywhere so the paper's setting is reproducible
/// (see the `ablation_pagesize` bench).
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// Smallest page size the slotted layout supports.
pub const MIN_PAGE_SIZE: usize = 128;

/// Largest supported page size (fits slot offsets in `u16`).
pub const MAX_PAGE_SIZE: usize = 1 << 16;
