//! Error type shared by the storage layer.

use std::fmt;

/// Result alias for storage operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the storage layer.
///
/// Corruption is reported through *structured* variants ([`Error::BadMagic`],
/// [`Error::ChecksumMismatch`], [`Error::TruncatedWal`]) so recovery code can
/// branch on the exact failure; [`Error::Corrupt`] remains for invariant
/// violations that carry no machine-usable payload (e.g. B+Tree structure
/// checks).
#[derive(Debug)]
pub enum Error {
    /// An underlying I/O operation failed.
    Io(std::io::Error),
    /// A page id referred to a page that does not exist (or was freed).
    InvalidPage(u64),
    /// The file is not a valid store (invariant violation with no
    /// machine-usable payload; see the structured variants below).
    Corrupt(String),
    /// A file's magic bytes did not match; `what` names the header
    /// ("store header", "wal header", ...).
    BadMagic {
        /// Which header failed validation.
        what: &'static str,
    },
    /// A page's trailer CRC32C (or a WAL record's CRC) did not match its
    /// contents — a torn write or bit rot.
    ChecksumMismatch {
        /// The page id (or WAL offset, for WAL-interior records).
        page: u64,
        /// Checksum stored on disk.
        expected: u32,
        /// Checksum computed over the bytes read.
        actual: u32,
    },
    /// The write-ahead log ends in a torn or incomplete record at `offset`.
    /// Recovery treats a tail *after the last commit* as expected crash
    /// debris; this error surfaces only when corruption makes the log
    /// unreadable where intact records were required.
    TruncatedWal {
        /// Byte offset of the first unreadable record.
        offset: u64,
    },
    /// A record did not fit in a page, or a slot id was out of range.
    PageOverflow {
        /// Bytes that were requested.
        requested: usize,
        /// Bytes actually available on the page.
        available: usize,
    },
    /// All buffer-pool frames are pinned; nothing can be evicted.
    PoolExhausted,
    /// A page could not be freed because a guard still pins it.
    PagePinned(u64),
    /// The requested page size is outside `[MIN_PAGE_SIZE, MAX_PAGE_SIZE]`
    /// or not a power of two.
    BadPageSize(usize),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::InvalidPage(p) => write!(f, "invalid page id {p}"),
            Error::Corrupt(msg) => write!(f, "corrupt store: {msg}"),
            Error::BadMagic { what } => write!(f, "corrupt store: bad magic in {what}"),
            Error::ChecksumMismatch {
                page,
                expected,
                actual,
            } => write!(
                f,
                "corrupt store: checksum mismatch on page {page} \
                 (expected {expected:#010x}, got {actual:#010x})"
            ),
            Error::TruncatedWal { offset } => {
                write!(
                    f,
                    "corrupt store: write-ahead log truncated at offset {offset}"
                )
            }
            Error::PageOverflow {
                requested,
                available,
            } => write!(
                f,
                "record of {requested} bytes does not fit in page ({available} bytes free)"
            ),
            Error::PoolExhausted => write!(f, "buffer pool exhausted: all frames pinned"),
            Error::PagePinned(p) => write!(f, "cannot free page {p}: still pinned"),
            Error::BadPageSize(s) => write!(f, "unsupported page size {s}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::PageOverflow {
            requested: 5000,
            available: 100,
        };
        let s = e.to_string();
        assert!(s.contains("5000") && s.contains("100"));
        assert!(Error::InvalidPage(7).to_string().contains('7'));
        assert!(Error::BadPageSize(3).to_string().contains('3'));
        let s = Error::PagePinned(11).to_string();
        assert!(s.contains("11") && s.contains("pinned"));
    }

    #[test]
    fn structured_corruption_display() {
        let s = Error::BadMagic {
            what: "store header",
        }
        .to_string();
        assert!(s.contains("bad magic") && s.contains("store header"));
        let s = Error::ChecksumMismatch {
            page: 7,
            expected: 0xDEAD_BEEF,
            actual: 0x0BAD_F00D,
        }
        .to_string();
        assert!(s.contains("page 7") && s.contains("0xdeadbeef") && s.contains("0x0badf00d"));
        let s = Error::TruncatedWal { offset: 1234 }.to_string();
        assert!(s.contains("1234") && s.contains("write-ahead log"));
    }

    #[test]
    fn io_error_source_preserved() {
        let e = Error::from(std::io::Error::other("boom"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("boom"));
    }
}
