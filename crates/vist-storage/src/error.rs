//! Error type shared by the storage layer.

use std::fmt;

/// Result alias for storage operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the storage layer.
#[derive(Debug)]
pub enum Error {
    /// An underlying I/O operation failed.
    Io(std::io::Error),
    /// A page id referred to a page that does not exist (or was freed).
    InvalidPage(u64),
    /// The file is not a valid store (bad magic / version / page size).
    Corrupt(String),
    /// A record did not fit in a page, or a slot id was out of range.
    PageOverflow {
        /// Bytes that were requested.
        requested: usize,
        /// Bytes actually available on the page.
        available: usize,
    },
    /// All buffer-pool frames are pinned; nothing can be evicted.
    PoolExhausted,
    /// A page could not be freed because a guard still pins it.
    PagePinned(u64),
    /// The requested page size is outside `[MIN_PAGE_SIZE, MAX_PAGE_SIZE]`
    /// or not a power of two.
    BadPageSize(usize),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::InvalidPage(p) => write!(f, "invalid page id {p}"),
            Error::Corrupt(msg) => write!(f, "corrupt store: {msg}"),
            Error::PageOverflow {
                requested,
                available,
            } => write!(
                f,
                "record of {requested} bytes does not fit in page ({available} bytes free)"
            ),
            Error::PoolExhausted => write!(f, "buffer pool exhausted: all frames pinned"),
            Error::PagePinned(p) => write!(f, "cannot free page {p}: still pinned"),
            Error::BadPageSize(s) => write!(f, "unsupported page size {s}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::PageOverflow {
            requested: 5000,
            available: 100,
        };
        let s = e.to_string();
        assert!(s.contains("5000") && s.contains("100"));
        assert!(Error::InvalidPage(7).to_string().contains('7'));
        assert!(Error::BadPageSize(3).to_string().contains('3'));
        let s = Error::PagePinned(11).to_string();
        assert!(s.contains("11") && s.contains("pinned"));
    }

    #[test]
    fn io_error_source_preserved() {
        let e = Error::from(std::io::Error::other("boom"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("boom"));
    }
}
