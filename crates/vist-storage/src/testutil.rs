//! Test scaffolding shared by this crate's tests and downstream crates'
//! integration tests. Not part of the stable API.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// A uniquely named temporary directory, removed (recursively) on drop.
///
/// Unlike ad-hoc `temp_dir().join(format!("...-{pid}"))` paths, two tests in
/// the same process can never collide (a global counter disambiguates), and
/// a failing test cannot leak files: cleanup runs on unwind too.
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create `"$TMPDIR/vist-<name>-<pid>-<n>"`.
    ///
    /// # Panics
    /// Panics if the directory cannot be created.
    #[must_use]
    pub fn new(name: &str) -> Self {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("vist-{name}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A file path inside the directory.
    #[must_use]
    pub fn file(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_and_cleaned_up() {
        let a = TempDir::new("t");
        let b = TempDir::new("t");
        assert_ne!(a.path(), b.path());
        std::fs::write(a.file("x"), b"data").unwrap();
        let pa = a.path().to_path_buf();
        drop(a);
        assert!(!pa.exists(), "dir removed with its contents");
        assert!(b.path().exists());
    }
}
