//! Deterministic fault injection for crash-recovery testing.
//!
//! Two wrappers share one counting core:
//!
//! * [`FaultVfs`] interposes on the [`Vfs`]/[`VFile`] seam under
//!   [`crate::FilePager`]. In `Crash` mode the scheduled write persists only
//!   a *seeded prefix* of its buffer (a torn write — exactly what a power
//!   loss mid-`pwrite` does) and every later operation fails, as if the
//!   process died. This is what the crash-recovery property tests iterate:
//!   crash at every operation index, reopen, assert the store equals its
//!   last checkpoint.
//! * [`FaultPager`] interposes on the [`Pager`] trait itself, for exercising
//!   error paths in the buffer pool and B+Tree without a real file.
//!
//! Both are controlled through a cloneable [`FaultHandle`], so a test keeps
//! control after handing the wrapper to a pool or pager. Everything is
//! deterministic: the torn-prefix length is `splitmix64(seed ^ op_index)`
//! reduced modulo `len + 1`, never a clock or OS entropy.

use crate::pager::{PageId, Pager};
use crate::vfs::{OpenMode, VFile, Vfs};
use crate::{Error, IoStats, Result};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

/// What happens when the scheduled operation index is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// The operation fails once; subsequent operations succeed. Models a
    /// transient error (`EIO`, `ENOSPC`) the caller is expected to survive.
    Fail,
    /// The operation fails and **every operation after it fails too**, as if
    /// the process was killed. A scheduled write first persists a seeded
    /// prefix of its buffer (a torn write).
    Crash,
}

const MODE_NONE: u8 = 0;
const MODE_FAIL: u8 = 1;
const MODE_CRASH: u8 = 2;

/// No fault scheduled.
const NEVER: u64 = u64::MAX;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn injected() -> io::Error {
    io::Error::other("injected fault")
}

/// True if `e` is a fault produced by this module (vs. a real I/O failure).
#[must_use]
pub fn is_injected(e: &Error) -> bool {
    matches!(e, Error::Io(io) if io.get_ref().is_some_and(|r| r.to_string() == "injected fault"))
}

#[derive(Default)]
struct Shared {
    ops: AtomicU64,
    fault_at: AtomicU64,
    mode: AtomicU8,
    seed: AtomicU64,
    crashed: AtomicBool,
}

enum Verdict {
    Proceed,
    /// Fail this op; later ops proceed.
    FailOnce,
    /// Fail this op and all later ones; payload seeds the torn prefix.
    CrashNow(u64),
    /// A crash already happened; everything fails.
    Dead,
}

impl Shared {
    fn new() -> Arc<Self> {
        let s = Shared::default();
        s.fault_at.store(NEVER, Ordering::Relaxed);
        Arc::new(s)
    }

    fn step(&self) -> Verdict {
        if self.crashed.load(Ordering::Acquire) {
            return Verdict::Dead;
        }
        let n = self.ops.fetch_add(1, Ordering::Relaxed);
        if n != self.fault_at.load(Ordering::Relaxed) {
            return Verdict::Proceed;
        }
        match self.mode.load(Ordering::Relaxed) {
            MODE_FAIL => Verdict::FailOnce,
            MODE_CRASH => {
                self.crashed.store(true, Ordering::Release);
                Verdict::CrashNow(splitmix64(self.seed.load(Ordering::Relaxed) ^ n))
            }
            _ => Verdict::Proceed,
        }
    }
}

/// Control handle for a [`FaultVfs`] or [`FaultPager`]; clone freely.
#[derive(Clone)]
pub struct FaultHandle(Arc<Shared>);

impl FaultHandle {
    /// Operations observed so far (including the faulted one).
    #[must_use]
    pub fn op_count(&self) -> u64 {
        self.0.ops.load(Ordering::Relaxed)
    }

    /// Schedule a fault at the `n`th operation from now on (0-based over the
    /// *cumulative* count — call [`FaultHandle::reset`] first to re-anchor).
    pub fn schedule(&self, n: u64, mode: FaultMode, seed: u64) {
        self.0.seed.store(seed, Ordering::Relaxed);
        self.0.mode.store(
            match mode {
                FaultMode::Fail => MODE_FAIL,
                FaultMode::Crash => MODE_CRASH,
            },
            Ordering::Relaxed,
        );
        self.0.fault_at.store(n, Ordering::Relaxed);
    }

    /// Clear any schedule, un-crash, and zero the operation counter.
    pub fn reset(&self) {
        self.0.fault_at.store(NEVER, Ordering::Relaxed);
        self.0.mode.store(MODE_NONE, Ordering::Relaxed);
        self.0.crashed.store(false, Ordering::Release);
        self.0.ops.store(0, Ordering::Relaxed);
    }

    /// Has a `Crash` fault fired?
    #[must_use]
    pub fn crashed(&self) -> bool {
        self.0.crashed.load(Ordering::Acquire)
    }
}

// ---------------------------------------------------------------------------
// VFS-level injection
// ---------------------------------------------------------------------------

/// A [`Vfs`] wrapper that fails or "crashes" at a scheduled operation index.
///
/// Counted operations: `open`, `sync_parent_dir`, and every `read_at` /
/// `write_at` / `set_len` / `sync` on files it has opened. `len` is not
/// counted (a pure metadata query adds no distinct crash state).
#[derive(Clone)]
pub struct FaultVfs {
    inner: Arc<dyn Vfs>,
    shared: Arc<Shared>,
}

impl FaultVfs {
    /// Wrap `inner`; no fault is scheduled until [`FaultHandle::schedule`].
    #[must_use]
    pub fn new(inner: Arc<dyn Vfs>) -> Self {
        FaultVfs {
            inner,
            shared: Shared::new(),
        }
    }

    /// The control handle shared by all files opened through this VFS.
    #[must_use]
    pub fn handle(&self) -> FaultHandle {
        FaultHandle(Arc::clone(&self.shared))
    }
}

struct FaultFile {
    inner: Box<dyn VFile>,
    shared: Arc<Shared>,
}

impl VFile for FaultFile {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        match self.shared.step() {
            Verdict::Proceed => self.inner.read_at(offset, buf),
            _ => Err(injected()),
        }
    }

    fn write_at(&mut self, offset: u64, buf: &[u8]) -> io::Result<()> {
        match self.shared.step() {
            Verdict::Proceed => self.inner.write_at(offset, buf),
            Verdict::CrashNow(r) => {
                // Torn write: a seeded prefix reaches the platter, the rest
                // does not. `% (len + 1)` so both "nothing" and "everything"
                // are reachable outcomes.
                let keep = (r % (buf.len() as u64 + 1)) as usize;
                if keep > 0 {
                    let _ = self.inner.write_at(offset, &buf[..keep]);
                }
                Err(injected())
            }
            _ => Err(injected()),
        }
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        match self.shared.step() {
            Verdict::Proceed => self.inner.set_len(len),
            _ => Err(injected()),
        }
    }

    fn len(&mut self) -> io::Result<u64> {
        if self.shared.crashed.load(Ordering::Acquire) {
            return Err(injected());
        }
        self.inner.len()
    }

    fn sync(&mut self) -> io::Result<()> {
        match self.shared.step() {
            Verdict::Proceed => self.inner.sync(),
            _ => Err(injected()),
        }
    }
}

impl Vfs for FaultVfs {
    fn open(&self, path: &Path, mode: OpenMode) -> io::Result<Box<dyn VFile>> {
        match self.shared.step() {
            Verdict::Proceed => Ok(Box::new(FaultFile {
                inner: self.inner.open(path, mode)?,
                shared: Arc::clone(&self.shared),
            })),
            _ => Err(injected()),
        }
    }

    fn sync_parent_dir(&self, path: &Path) -> io::Result<()> {
        match self.shared.step() {
            Verdict::Proceed => self.inner.sync_parent_dir(path),
            _ => Err(injected()),
        }
    }
}

// ---------------------------------------------------------------------------
// Pager-level injection
// ---------------------------------------------------------------------------

/// A [`Pager`] wrapper that fails or "crashes" at a scheduled operation
/// index. Counted operations: `allocate`, `free`, `read`, `write`, `sync`.
/// Metadata queries (`page_size`, `live_pages`, `store_bytes`, `stats`) pass
/// through uncounted.
pub struct FaultPager<P> {
    inner: P,
    shared: Arc<Shared>,
}

impl<P: Pager> FaultPager<P> {
    /// Wrap `inner`; no fault is scheduled until [`FaultHandle::schedule`].
    pub fn new(inner: P) -> Self {
        FaultPager {
            inner,
            shared: Shared::new(),
        }
    }

    /// The control handle for this pager.
    #[must_use]
    pub fn handle(&self) -> FaultHandle {
        FaultHandle(Arc::clone(&self.shared))
    }

    fn step(&self) -> Result<()> {
        match self.shared.step() {
            Verdict::Proceed => Ok(()),
            _ => Err(Error::Io(injected())),
        }
    }
}

impl<P: Pager> Pager for FaultPager<P> {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn allocate(&mut self) -> Result<PageId> {
        self.step()?;
        self.inner.allocate()
    }

    fn free(&mut self, id: PageId) -> Result<()> {
        self.step()?;
        self.inner.free(id)
    }

    fn read(&mut self, id: PageId, buf: &mut [u8]) -> Result<()> {
        self.step()?;
        self.inner.read(id, buf)
    }

    fn write(&mut self, id: PageId, buf: &[u8]) -> Result<()> {
        self.step()?;
        self.inner.write(id, buf)
    }

    fn live_pages(&self) -> u64 {
        self.inner.live_pages()
    }

    fn store_bytes(&self) -> u64 {
        self.inner.store_bytes()
    }

    fn sync(&mut self) -> Result<()> {
        self.step()?;
        self.inner.sync()
    }

    fn stats(&self) -> IoStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;
    use crate::vfs::RealVfs;
    use crate::MemPager;

    #[test]
    fn fail_is_one_shot() {
        let mut p = FaultPager::new(MemPager::new(128));
        let h = p.handle();
        h.schedule(2, FaultMode::Fail, 0);
        let a = p.allocate().unwrap(); // op 0
        p.write(a, &[1u8; 128]).unwrap(); // op 1
        let err = p.write(a, &[2u8; 128]).unwrap_err(); // op 2: injected
        assert!(is_injected(&err), "got {err}");
        p.write(a, &[3u8; 128]).unwrap(); // op 3: recovered
        let mut buf = [0u8; 128];
        p.read(a, &mut buf).unwrap();
        assert_eq!(buf[0], 3);
        assert!(!h.crashed());
        assert_eq!(h.op_count(), 5);
    }

    #[test]
    fn crash_is_permanent() {
        let mut p = FaultPager::new(MemPager::new(128));
        let h = p.handle();
        h.schedule(1, FaultMode::Crash, 7);
        let a = p.allocate().unwrap();
        assert!(p.write(a, &[1u8; 128]).is_err());
        assert!(p.read(a, &mut [0u8; 128]).is_err());
        assert!(p.sync().is_err());
        assert!(h.crashed());
        h.reset();
        p.write(a, &[1u8; 128]).unwrap();
    }

    #[test]
    fn torn_write_persists_seeded_prefix() {
        let dir = TempDir::new("fault-torn");
        let path = dir.file("f");
        let run = |seed: u64| -> Vec<u8> {
            let _ = std::fs::remove_file(&path);
            let vfs = FaultVfs::new(Arc::new(RealVfs));
            let h = vfs.handle();
            let mut f = vfs.open(&path, OpenMode::CreateTruncate).unwrap(); // op 0
            f.write_at(0, &[0xEE; 64]).unwrap(); // op 1
            h.schedule(2, FaultMode::Crash, seed);
            assert!(f.write_at(0, &[0x11; 64]).is_err()); // op 2: torn
            assert!(f.sync().is_err(), "dead after crash");
            drop(f);
            std::fs::read(&path).unwrap()
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b, "torn prefix is deterministic per seed");
        assert_eq!(a.len(), 64);
        // The file is 0x11 for the torn prefix, 0xEE beyond it.
        let torn = a.iter().take_while(|&&x| x == 0x11).count();
        assert!(a[torn..].iter().all(|&x| x == 0xEE));
        // Some other seed gives some other prefix (42/43 chosen to differ).
        let c = run(43);
        let torn_c = c.iter().take_while(|&&x| x == 0x11).count();
        assert_ne!(torn, torn_c, "seed varies the tear point");
    }

    #[test]
    fn vfs_open_is_counted_and_crashable() {
        let dir = TempDir::new("fault-open");
        let vfs = FaultVfs::new(Arc::new(RealVfs));
        let h = vfs.handle();
        h.schedule(0, FaultMode::Crash, 0);
        assert!(vfs.open(&dir.file("f"), OpenMode::CreateTruncate).is_err());
        assert!(vfs.sync_parent_dir(&dir.file("f")).is_err());
        assert!(h.crashed());
    }
}
