//! Minimal file-system seam under [`crate::FilePager`].
//!
//! All durable I/O (the data file and its write-ahead log) goes through
//! [`Vfs`]/[`VFile`] so tests can interpose [`crate::FaultVfs`] and fail or
//! "crash" the store at an exact I/O operation — including torn writes that
//! persist only a prefix of a buffer, the failure mode the WAL exists to
//! survive. Production code uses [`RealVfs`], a thin wrapper over
//! `std::fs::File`.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// How [`Vfs::open`] should treat an existing file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenMode {
    /// Create the file, truncating any existing content.
    CreateTruncate,
    /// Open an existing file; error if absent.
    MustExist,
    /// Open if present, create empty otherwise.
    OpenOrCreate,
}

/// A random-access file handle.
///
/// `len` takes `&mut self` (it may hit the file system), so the usual
/// `is_empty` pairing does not apply.
#[allow(clippy::len_without_is_empty)]
pub trait VFile: Send {
    /// Read exactly `buf.len()` bytes at `offset`.
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()>;

    /// Write all of `buf` at `offset`, extending the file if needed.
    fn write_at(&mut self, offset: u64, buf: &[u8]) -> io::Result<()>;

    /// Truncate or extend the file to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;

    /// Current file length in bytes.
    fn len(&mut self) -> io::Result<u64>;

    /// Flush file contents (and metadata) to durable storage.
    fn sync(&mut self) -> io::Result<()>;
}

/// A file-system namespace that can open [`VFile`]s.
pub trait Vfs: Send + Sync {
    /// Open `path` according to `mode`.
    fn open(&self, path: &Path, mode: OpenMode) -> io::Result<Box<dyn VFile>>;

    /// Fsync the directory containing `path`, making a just-created file's
    /// directory entry durable. Best-effort no-op where unsupported.
    fn sync_parent_dir(&self, path: &Path) -> io::Result<()>;
}

/// The real file system.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealVfs;

struct RealFile(File);

impl VFile for RealFile {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        self.0.seek(SeekFrom::Start(offset))?;
        self.0.read_exact(buf)
    }

    fn write_at(&mut self, offset: u64, buf: &[u8]) -> io::Result<()> {
        self.0.seek(SeekFrom::Start(offset))?;
        self.0.write_all(buf)
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }

    fn len(&mut self) -> io::Result<u64> {
        Ok(self.0.metadata()?.len())
    }

    fn sync(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
}

impl Vfs for RealVfs {
    fn open(&self, path: &Path, mode: OpenMode) -> io::Result<Box<dyn VFile>> {
        let mut opts = OpenOptions::new();
        opts.read(true).write(true);
        match mode {
            OpenMode::CreateTruncate => {
                opts.create(true).truncate(true);
            }
            OpenMode::MustExist => {}
            OpenMode::OpenOrCreate => {
                opts.create(true);
            }
        }
        Ok(Box::new(RealFile(opts.open(path)?)))
    }

    fn sync_parent_dir(&self, path: &Path) -> io::Result<()> {
        let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
        let Some(dir) = dir else { return Ok(()) };
        // Directory fsync is a Unix-ism; opening a directory read-only and
        // syncing it is the portable-enough idiom. Ignore platforms where
        // directories cannot be opened as files.
        match File::open(dir) {
            Ok(d) => d.sync_all(),
            Err(_) => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;

    #[test]
    fn real_file_roundtrip() {
        let dir = TempDir::new("vfs-roundtrip");
        let path = dir.path().join("f");
        let vfs = RealVfs;
        let mut f = vfs.open(&path, OpenMode::CreateTruncate).unwrap();
        f.write_at(0, b"hello").unwrap();
        f.write_at(8, b"world").unwrap();
        assert_eq!(f.len().unwrap(), 13);
        let mut buf = [0u8; 5];
        f.read_at(8, &mut buf).unwrap();
        assert_eq!(&buf, b"world");
        f.set_len(5).unwrap();
        assert_eq!(f.len().unwrap(), 5);
        f.sync().unwrap();
        vfs.sync_parent_dir(&path).unwrap();
        // Short read past EOF is an error, not a panic.
        assert!(f.read_at(3, &mut buf).is_err());
        // MustExist on a missing path errors.
        assert!(vfs
            .open(&dir.path().join("absent"), OpenMode::MustExist)
            .is_err());
    }
}
