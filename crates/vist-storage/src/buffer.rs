//! A fixed-capacity page cache with CLOCK eviction.
//!
//! The pool owns its backing [`Pager`]. Pages are fetched through RAII guards
//! ([`PageRef`], [`PageRefMut`]) that pin the frame for their lifetime;
//! eviction only considers unpinned frames and writes dirty victims back.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::lock_api::{ArcRwLockReadGuard, ArcRwLockWriteGuard};
use parking_lot::{Mutex, RawRwLock, RwLock};

use crate::{Error, IoStats, PageId, Pager, Result};

type ReadGuard = ArcRwLockReadGuard<RawRwLock, Box<[u8]>>;
type WriteGuard = ArcRwLockWriteGuard<RawRwLock, Box<[u8]>>;

struct Frame {
    pid: PageId,
    data: Arc<RwLock<Box<[u8]>>>,
    dirty: AtomicBool,
    pins: AtomicUsize,
    referenced: AtomicBool,
}

struct Inner {
    pager: Box<dyn Pager>,
    map: HashMap<PageId, Arc<Frame>>,
    ring: Vec<Arc<Frame>>,
    hand: usize,
    capacity: usize,
    hits: u64,
    misses: u64,
    write_backs: u64,
}

/// A page cache over a [`Pager`].
///
/// All methods take `&self`; the pool is internally synchronized and is
/// `Send + Sync` when its pager is.
pub struct BufferPool {
    inner: Mutex<Inner>,
    page_size: usize,
}

/// Shared (read) guard over a cached page.
pub struct PageRef {
    frame: Arc<Frame>,
    guard: ReadGuard,
}

/// Exclusive (write) guard over a cached page. Marks the page dirty on drop.
pub struct PageRefMut {
    frame: Arc<Frame>,
    guard: WriteGuard,
}

impl PageRef {
    /// The page's id.
    #[must_use]
    pub fn id(&self) -> PageId {
        self.frame.pid
    }

    /// The page contents.
    #[must_use]
    pub fn data(&self) -> &[u8] {
        &self.guard
    }
}

impl Drop for PageRef {
    fn drop(&mut self) {
        self.frame.pins.fetch_sub(1, Ordering::Release);
    }
}

impl PageRefMut {
    /// The page's id.
    #[must_use]
    pub fn id(&self) -> PageId {
        self.frame.pid
    }

    /// The page contents.
    #[must_use]
    pub fn data(&self) -> &[u8] {
        &self.guard
    }

    /// Mutable page contents.
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.guard
    }
}

impl Drop for PageRefMut {
    fn drop(&mut self) {
        self.frame.dirty.store(true, Ordering::Release);
        self.frame.pins.fetch_sub(1, Ordering::Release);
    }
}

impl BufferPool {
    /// Wrap `pager` with a cache of `capacity` frames (at least 4).
    pub fn with_capacity<P: Pager + 'static>(pager: P, capacity: usize) -> Self {
        let page_size = pager.page_size();
        BufferPool {
            inner: Mutex::new(Inner {
                pager: Box::new(pager),
                map: HashMap::new(),
                ring: Vec::new(),
                hand: 0,
                capacity: capacity.max(4),
                hits: 0,
                misses: 0,
                write_backs: 0,
            }),
            page_size,
        }
    }

    /// Page size of the underlying pager.
    #[must_use]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Allocate a fresh page (zeroed) in the backing store.
    pub fn allocate(&self) -> Result<PageId> {
        self.inner.lock().pager.allocate()
    }

    /// Free a page. Fails with [`Error::PoolExhausted`] if it is pinned.
    pub fn free(&self, pid: PageId) -> Result<()> {
        let mut inner = self.inner.lock();
        if let Some(frame) = inner.map.get(&pid) {
            if frame.pins.load(Ordering::Acquire) > 0 {
                return Err(Error::PoolExhausted);
            }
            let frame = inner.map.remove(&pid).expect("present");
            inner.ring.retain(|f| !Arc::ptr_eq(f, &frame));
            if inner.hand >= inner.ring.len() {
                inner.hand = 0;
            }
        }
        inner.pager.free(pid)
    }

    fn get_frame(inner: &mut Inner, pid: PageId, page_size: usize) -> Result<Arc<Frame>> {
        if let Some(frame) = inner.map.get(&pid) {
            inner.hits += 1;
            frame.referenced.store(true, Ordering::Relaxed);
            frame.pins.fetch_add(1, Ordering::Acquire);
            return Ok(Arc::clone(frame));
        }
        inner.misses += 1;
        if inner.ring.len() >= inner.capacity {
            Self::evict_one(inner)?;
        }
        let mut buf = vec![0u8; page_size].into_boxed_slice();
        inner.pager.read(pid, &mut buf)?;
        let frame = Arc::new(Frame {
            pid,
            data: Arc::new(RwLock::new(buf)),
            dirty: AtomicBool::new(false),
            pins: AtomicUsize::new(1),
            referenced: AtomicBool::new(true),
        });
        inner.map.insert(pid, Arc::clone(&frame));
        inner.ring.push(frame.clone());
        Ok(frame)
    }

    fn evict_one(inner: &mut Inner) -> Result<()> {
        // Two full sweeps: the first clears reference bits, the second takes
        // any unpinned frame. If everything stays pinned, fail.
        let n = inner.ring.len();
        for _ in 0..2 * n {
            let idx = inner.hand % n;
            inner.hand = (inner.hand + 1) % n;
            let frame = Arc::clone(&inner.ring[idx]);
            if frame.pins.load(Ordering::Acquire) > 0 {
                continue;
            }
            if frame.referenced.swap(false, Ordering::Relaxed) {
                continue;
            }
            if frame.dirty.swap(false, Ordering::AcqRel) {
                let data = frame.data.read();
                inner.pager.write(frame.pid, &data)?;
                inner.write_backs += 1;
            }
            inner.map.remove(&frame.pid);
            inner.ring.swap_remove(idx);
            if inner.hand >= inner.ring.len() {
                inner.hand = 0;
            }
            return Ok(());
        }
        Err(Error::PoolExhausted)
    }

    /// Fetch a page for reading.
    pub fn fetch(&self, pid: PageId) -> Result<PageRef> {
        let frame = {
            let mut inner = self.inner.lock();
            Self::get_frame(&mut inner, pid, self.page_size)?
        };
        let guard = RwLock::read_arc(&frame.data);
        Ok(PageRef { frame, guard })
    }

    /// Fetch a page for writing. The page is marked dirty when the guard
    /// drops.
    pub fn fetch_mut(&self, pid: PageId) -> Result<PageRefMut> {
        let frame = {
            let mut inner = self.inner.lock();
            Self::get_frame(&mut inner, pid, self.page_size)?
        };
        let guard = RwLock::write_arc(&frame.data);
        Ok(PageRefMut { frame, guard })
    }

    /// Write all dirty cached pages back and sync the backing store.
    pub fn flush(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        let frames: Vec<Arc<Frame>> = inner.ring.to_vec();
        for frame in frames {
            if frame.dirty.swap(false, Ordering::AcqRel) {
                let data = frame.data.read();
                inner.pager.write(frame.pid, &data)?;
                inner.write_backs += 1;
            }
        }
        inner.pager.sync()
    }

    /// Number of live pages in the backing store.
    #[must_use]
    pub fn live_pages(&self) -> u64 {
        self.inner.lock().pager.live_pages()
    }

    /// Total bytes of the backing store (the on-disk index size).
    #[must_use]
    pub fn store_bytes(&self) -> u64 {
        self.inner.lock().pager.store_bytes()
    }

    /// Combined pager + cache statistics.
    #[must_use]
    pub fn stats(&self) -> IoStats {
        let inner = self.inner.lock();
        let mut s = inner.pager.stats();
        s.cache_hits = inner.hits;
        s.cache_misses = inner.misses;
        s.write_backs = inner.write_backs;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemPager;

    fn pool(cap: usize) -> BufferPool {
        BufferPool::with_capacity(MemPager::new(256), cap)
    }

    #[test]
    fn fetch_returns_written_data() {
        let pool = pool(8);
        let pid = pool.allocate().unwrap();
        {
            let mut p = pool.fetch_mut(pid).unwrap();
            p.data_mut()[0] = 99;
        }
        assert_eq!(pool.fetch(pid).unwrap().data()[0], 99);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let pool = pool(4);
        let mut pids = Vec::new();
        for i in 0..32u8 {
            let pid = pool.allocate().unwrap();
            pool.fetch_mut(pid).unwrap().data_mut()[0] = i;
            pids.push(pid);
        }
        // Every page must survive eviction churn.
        for (i, pid) in pids.iter().enumerate() {
            assert_eq!(pool.fetch(*pid).unwrap().data()[0], i as u8);
        }
        assert!(pool.stats().write_backs > 0, "evictions happened");
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let pool = pool(4);
        let pinned = pool.allocate().unwrap();
        pool.fetch_mut(pinned).unwrap().data_mut()[0] = 0xCC;
        let guard = pool.fetch(pinned).unwrap();
        for _ in 0..16 {
            let pid = pool.allocate().unwrap();
            pool.fetch_mut(pid).unwrap().data_mut()[0] = 1;
        }
        assert_eq!(guard.data()[0], 0xCC);
        drop(guard);
    }

    #[test]
    fn all_pinned_pool_exhausted() {
        let pool = pool(4);
        let mut guards = Vec::new();
        for _ in 0..4 {
            let pid = pool.allocate().unwrap();
            guards.push(pool.fetch(pid).unwrap());
        }
        let extra = pool.allocate().unwrap();
        assert!(matches!(pool.fetch(extra), Err(Error::PoolExhausted)));
        drop(guards);
        assert!(pool.fetch(extra).is_ok());
    }

    #[test]
    fn free_pinned_page_fails() {
        let pool = pool(8);
        let pid = pool.allocate().unwrap();
        let g = pool.fetch(pid).unwrap();
        assert!(pool.free(pid).is_err());
        drop(g);
        assert!(pool.free(pid).is_ok());
    }

    #[test]
    fn hit_ratio_tracked() {
        let pool = pool(8);
        let pid = pool.allocate().unwrap();
        let _ = pool.fetch(pid).unwrap();
        let _ = pool.fetch(pid).unwrap();
        let s = pool.stats();
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.cache_hits, 1);
    }

    #[test]
    fn flush_persists_through_reopen_cycle() {
        // flush() + direct pager semantics are covered with MemPager by
        // evicting everything and re-reading.
        let pool = pool(4);
        let pid = pool.allocate().unwrap();
        pool.fetch_mut(pid).unwrap().data_mut()[7] = 0x77;
        pool.flush().unwrap();
        // Evict by churning other pages.
        for _ in 0..16 {
            let p = pool.allocate().unwrap();
            let _ = pool.fetch(p).unwrap();
        }
        assert_eq!(pool.fetch(pid).unwrap().data()[7], 0x77);
    }
}
