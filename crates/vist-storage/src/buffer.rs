//! A fixed-capacity page cache with lock striping and CLOCK eviction.
//!
//! The pool owns its backing [`Pager`]. Frames are partitioned into
//! power-of-two *shards* keyed by a hash of the page id; a cache **hit**
//! touches only its shard's mutex, so readers on disjoint pages scale with
//! core count instead of serializing behind one pool-wide lock. The pager
//! itself sits behind a separate mutex and is only locked on a miss,
//! eviction write-back, allocation, or flush.
//!
//! On a **miss** the owning shard's mutex stays held across the pager read
//! (plus any eviction write-back), so cache hits on that same shard stall
//! for the duration of the cold I/O; hits on the other shards are
//! unaffected. This is a deliberate simplicity trade-off — it keeps
//! double-fetch and fetch-vs-free races impossible without placeholder
//! frames or per-frame fill states.
//!
//! Pages are fetched through RAII guards ([`PageRef`], [`PageRefMut`]) that
//! pin the frame for their lifetime; eviction only considers unpinned frames
//! and writes dirty victims back.
//!
//! Lock hierarchy (see `docs/CONCURRENCY.md` at the repo root): a shard
//! mutex may be held while taking the pager mutex, never the reverse; frame
//! `RwLock`s are leaves and are never held while acquiring a shard lock.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::sync::{ArcRwLockReadGuard, ArcRwLockWriteGuard, Mutex, MutexGuard, RwLock};
use crate::{Error, IoStats, PageId, Pager, Result};

type ReadGuard = ArcRwLockReadGuard<Box<[u8]>>;
type WriteGuard = ArcRwLockWriteGuard<Box<[u8]>>;

/// Hard ceiling on the number of shards.
const MAX_SHARDS: usize = 16;
/// Minimum frames per shard; pools smaller than `2 * MIN_SHARD_FRAMES` stay
/// single-sharded so tiny-cache eviction semantics match the unsharded pool.
const MIN_SHARD_FRAMES: usize = 4;

struct Frame {
    pid: PageId,
    data: Arc<RwLock<Box<[u8]>>>,
    dirty: AtomicBool,
    pins: AtomicUsize,
    referenced: AtomicBool,
}

/// One lock stripe: a slice of the frame map plus its own CLOCK hand.
struct ShardInner {
    map: HashMap<PageId, Arc<Frame>>,
    ring: Vec<Arc<Frame>>,
    hand: usize,
    capacity: usize,
}

struct Shard {
    inner: Mutex<ShardInner>,
    hits: AtomicU64,
    /// Hits whose shard lock was acquired without blocking (`try_lock`
    /// succeeded) — a direct measure of how contention-free the striped
    /// hot path is.
    uncontended_hits: AtomicU64,
    misses: AtomicU64,
    write_backs: AtomicU64,
}

/// Cache counters of a single buffer-pool shard.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Lookups that found the page cached in this shard.
    pub hits: u64,
    /// Subset of `hits` whose shard lock was acquired without contention.
    pub uncontended_hits: u64,
    /// Lookups that had to read the page from the pager.
    pub misses: u64,
    /// Dirty pages this shard wrote back (eviction or flush).
    pub write_backs: u64,
}

impl ShardStats {
    /// Hit ratio in `[0, 1]`; `None` when the shard saw no lookups.
    #[must_use]
    pub fn hit_ratio(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }
}

/// Per-shard statistics snapshot of a [`BufferPool`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardStats>,
}

impl PoolStats {
    /// Number of shards in the pool.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Sum of per-shard counters.
    #[must_use]
    pub fn totals(&self) -> ShardStats {
        let mut t = ShardStats::default();
        for s in &self.shards {
            t.hits += s.hits;
            t.uncontended_hits += s.uncontended_hits;
            t.misses += s.misses;
            t.write_backs += s.write_backs;
        }
        t
    }
}

/// A sharded page cache over a [`Pager`].
///
/// All methods take `&self`; the pool is internally synchronized and is
/// `Send + Sync` when its pager is. A cache hit takes only the owning
/// shard's mutex.
pub struct BufferPool {
    shards: Box<[Shard]>,
    shard_mask: u32,
    pager: Mutex<Box<dyn Pager>>,
    page_size: usize,
}

/// Shared (read) guard over a cached page.
pub struct PageRef {
    frame: Arc<Frame>,
    guard: ReadGuard,
}

/// Exclusive (write) guard over a cached page. Marks the page dirty on drop.
pub struct PageRefMut {
    frame: Arc<Frame>,
    guard: WriteGuard,
}

impl PageRef {
    /// The page's id.
    #[must_use]
    pub fn id(&self) -> PageId {
        self.frame.pid
    }

    /// The page contents.
    #[must_use]
    pub fn data(&self) -> &[u8] {
        &self.guard
    }
}

impl Drop for PageRef {
    fn drop(&mut self) {
        self.frame.pins.fetch_sub(1, Ordering::Release);
    }
}

impl PageRefMut {
    /// The page's id.
    #[must_use]
    pub fn id(&self) -> PageId {
        self.frame.pid
    }

    /// The page contents.
    #[must_use]
    pub fn data(&self) -> &[u8] {
        &self.guard
    }

    /// Mutable page contents.
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.guard
    }
}

impl Drop for PageRefMut {
    fn drop(&mut self) {
        self.frame.dirty.store(true, Ordering::Release);
        self.frame.pins.fetch_sub(1, Ordering::Release);
    }
}

/// Largest power-of-two shard count that keeps every shard at least
/// [`MIN_SHARD_FRAMES`] frames, capped at [`MAX_SHARDS`].
fn shard_count_for(capacity: usize) -> usize {
    let mut n = 1usize;
    while n * 2 <= MAX_SHARDS && capacity / (n * 2) >= MIN_SHARD_FRAMES {
        n *= 2;
    }
    n
}

impl BufferPool {
    /// Wrap `pager` with a cache of `capacity` frames (at least 4), striped
    /// over up to 16 shards.
    pub fn with_capacity<P: Pager + 'static>(pager: P, capacity: usize) -> Self {
        crate::register_metrics();
        let page_size = pager.page_size();
        let capacity = capacity.max(MIN_SHARD_FRAMES);
        let n = shard_count_for(capacity);
        let shards: Box<[Shard]> = (0..n)
            .map(|i| Shard {
                inner: Mutex::new(ShardInner {
                    map: HashMap::new(),
                    ring: Vec::new(),
                    hand: 0,
                    // Distribute the capacity; the first `capacity % n`
                    // shards take one extra frame.
                    capacity: capacity / n + usize::from(i < capacity % n),
                }),
                hits: AtomicU64::new(0),
                uncontended_hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                write_backs: AtomicU64::new(0),
            })
            .collect();
        BufferPool {
            shards,
            shard_mask: (n - 1) as u32,
            pager: Mutex::new(Box::new(pager)),
            page_size,
        }
    }

    /// The shard owning `pid` (Fibonacci hash over the page id, so dense
    /// sequential ids still spread across shards).
    fn shard(&self, pid: PageId) -> &Shard {
        let h = pid.wrapping_mul(0x9E37_79B9).rotate_right(12);
        &self.shards[(h & self.shard_mask) as usize]
    }

    /// Page size of the underlying pager.
    #[must_use]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of shards the frame map is striped over.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Allocate a fresh page (zeroed) in the backing store.
    pub fn allocate(&self) -> Result<PageId> {
        self.pager.lock().allocate()
    }

    /// Free a page. Fails with [`Error::PagePinned`] if a guard still pins it.
    pub fn free(&self, pid: PageId) -> Result<()> {
        let shard = self.shard(pid);
        let mut inner = shard.inner.lock();
        if let Some(frame) = inner.map.get(&pid) {
            if frame.pins.load(Ordering::Acquire) > 0 {
                return Err(Error::PagePinned(u64::from(pid)));
            }
            let frame = inner.map.remove(&pid).expect("present");
            inner.ring.retain(|f| !Arc::ptr_eq(f, &frame));
            if inner.hand >= inner.ring.len() {
                inner.hand = 0;
            }
        }
        // Shard lock held across the pager call: keeps free vs. re-fetch of
        // the same pid serialized (same shard by construction).
        self.pager.lock().free(pid)
    }

    /// Lock a shard, reporting whether the lock was contended.
    fn lock_shard<'a>(shard: &'a Shard) -> (MutexGuard<'a, ShardInner>, bool) {
        match shard.inner.try_lock() {
            Some(g) => (g, false),
            None => (shard.inner.lock(), true),
        }
    }

    fn get_frame(&self, pid: PageId) -> Result<Arc<Frame>> {
        let shard = self.shard(pid);
        let (mut inner, contended) = Self::lock_shard(shard);
        if let Some(frame) = inner.map.get(&pid) {
            shard.hits.fetch_add(1, Ordering::Relaxed);
            if !contended {
                shard.uncontended_hits.fetch_add(1, Ordering::Relaxed);
            }
            vist_obs::counter!("vist_storage_pool_hit_total").inc();
            vist_obs::attr::charge_pool_hit();
            frame.referenced.store(true, Ordering::Relaxed);
            frame.pins.fetch_add(1, Ordering::Acquire);
            return Ok(Arc::clone(frame));
        }
        shard.misses.fetch_add(1, Ordering::Relaxed);
        vist_obs::counter!("vist_storage_pool_miss_total").inc();
        vist_obs::attr::charge_pool_miss();
        if inner.ring.len() >= inner.capacity {
            self.evict_one(shard, &mut inner)?;
        }
        let mut buf = vec![0u8; self.page_size].into_boxed_slice();
        let t = vist_obs::now();
        self.pager.lock().read(pid, &mut buf)?;
        vist_obs::observe_since(vist_obs::histogram!("vist_storage_page_read_nanos"), t);
        vist_obs::attr::charge_page_read(self.page_size as u64);
        let frame = Arc::new(Frame {
            pid,
            data: Arc::new(RwLock::new(buf)),
            dirty: AtomicBool::new(false),
            pins: AtomicUsize::new(1),
            referenced: AtomicBool::new(true),
        });
        inner.map.insert(pid, Arc::clone(&frame));
        inner.ring.push(frame.clone());
        Ok(frame)
    }

    fn evict_one(&self, shard: &Shard, inner: &mut ShardInner) -> Result<()> {
        // Two full sweeps: the first clears reference bits, the second takes
        // any unpinned frame. If everything stays pinned, fail.
        let n = inner.ring.len();
        for _ in 0..2 * n {
            let idx = inner.hand % n;
            inner.hand = (inner.hand + 1) % n;
            let frame = Arc::clone(&inner.ring[idx]);
            if frame.pins.load(Ordering::Acquire) > 0 {
                continue;
            }
            if frame.referenced.swap(false, Ordering::Relaxed) {
                continue;
            }
            if frame.dirty.swap(false, Ordering::AcqRel) {
                let data = frame.data.read();
                let t = vist_obs::now();
                if let Err(e) = self.pager.lock().write(frame.pid, &data) {
                    // Re-mark dirty so the modifications survive in cache
                    // and a later eviction/flush retries the write instead
                    // of silently dropping them.
                    frame.dirty.store(true, Ordering::Release);
                    return Err(e);
                }
                vist_obs::observe_since(vist_obs::histogram!("vist_storage_page_write_nanos"), t);
                shard.write_backs.fetch_add(1, Ordering::Relaxed);
                vist_obs::counter!("vist_storage_write_back_total").inc();
            }
            inner.map.remove(&frame.pid);
            inner.ring.swap_remove(idx);
            if inner.hand >= inner.ring.len() {
                inner.hand = 0;
            }
            return Ok(());
        }
        Err(Error::PoolExhausted)
    }

    /// Fetch a page for reading.
    pub fn fetch(&self, pid: PageId) -> Result<PageRef> {
        let frame = self.get_frame(pid)?;
        let guard = RwLock::read_arc(&frame.data);
        Ok(PageRef { frame, guard })
    }

    /// Fetch a page for writing. The page is marked dirty when the guard
    /// drops.
    pub fn fetch_mut(&self, pid: PageId) -> Result<PageRefMut> {
        let frame = self.get_frame(pid)?;
        let guard = RwLock::write_arc(&frame.data);
        Ok(PageRefMut { frame, guard })
    }

    /// Write all dirty cached pages back and sync the backing store.
    pub fn flush(&self) -> Result<()> {
        for shard in self.shards.iter() {
            // Snapshot the shard's frames, then write back outside its lock
            // so concurrent fetches on the shard are not stalled by I/O.
            let frames: Vec<Arc<Frame>> = shard.inner.lock().ring.to_vec();
            for frame in frames {
                if frame.dirty.swap(false, Ordering::AcqRel) {
                    let data = frame.data.read();
                    let t = vist_obs::now();
                    if let Err(e) = self.pager.lock().write(frame.pid, &data) {
                        frame.dirty.store(true, Ordering::Release);
                        return Err(e);
                    }
                    vist_obs::observe_since(
                        vist_obs::histogram!("vist_storage_page_write_nanos"),
                        t,
                    );
                    shard.write_backs.fetch_add(1, Ordering::Relaxed);
                    vist_obs::counter!("vist_storage_write_back_total").inc();
                }
            }
        }
        self.pager.lock().sync()
    }

    /// Number of live pages in the backing store.
    #[must_use]
    pub fn live_pages(&self) -> u64 {
        self.pager.lock().live_pages()
    }

    /// Total bytes of the backing store (the on-disk index size).
    #[must_use]
    pub fn store_bytes(&self) -> u64 {
        self.pager.lock().store_bytes()
    }

    /// Combined pager + cache statistics, aggregated over all shards.
    #[must_use]
    pub fn stats(&self) -> IoStats {
        let store_bytes = self.store_bytes();
        vist_obs::gauge!("vist_storage_store_bytes")
            .set(i64::try_from(store_bytes).unwrap_or(i64::MAX));
        let mut s = self.pager.lock().stats();
        let t = self.pool_stats().totals();
        s.cache_hits = t.hits;
        s.cache_misses = t.misses;
        s.write_backs = t.write_backs;
        s
    }

    /// Per-shard cache statistics.
    #[must_use]
    pub fn pool_stats(&self) -> PoolStats {
        PoolStats {
            shards: self
                .shards
                .iter()
                .map(|s| ShardStats {
                    hits: s.hits.load(Ordering::Relaxed),
                    uncontended_hits: s.uncontended_hits.load(Ordering::Relaxed),
                    misses: s.misses.load(Ordering::Relaxed),
                    write_backs: s.write_backs.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemPager;

    fn pool(cap: usize) -> BufferPool {
        BufferPool::with_capacity(MemPager::new(256), cap)
    }

    #[test]
    fn shard_count_scales_with_capacity() {
        assert_eq!(shard_count_for(4), 1);
        assert_eq!(shard_count_for(7), 1);
        assert_eq!(shard_count_for(8), 2);
        assert_eq!(shard_count_for(64), 16);
        assert_eq!(shard_count_for(1024), 16);
        assert_eq!(pool(4).shard_count(), 1);
        assert_eq!(pool(1024).shard_count(), 16);
    }

    #[test]
    fn shard_capacities_sum_to_total() {
        for cap in [4usize, 9, 17, 63, 64, 100, 1024] {
            let p = pool(cap);
            let total: usize = p.shards.iter().map(|s| s.inner.lock().capacity).sum();
            assert_eq!(total, cap, "capacity {cap}");
        }
    }

    #[test]
    fn fetch_returns_written_data() {
        let pool = pool(8);
        let pid = pool.allocate().unwrap();
        {
            let mut p = pool.fetch_mut(pid).unwrap();
            p.data_mut()[0] = 99;
        }
        assert_eq!(pool.fetch(pid).unwrap().data()[0], 99);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let pool = pool(4);
        let mut pids = Vec::new();
        for i in 0..32u8 {
            let pid = pool.allocate().unwrap();
            pool.fetch_mut(pid).unwrap().data_mut()[0] = i;
            pids.push(pid);
        }
        // Every page must survive eviction churn.
        for (i, pid) in pids.iter().enumerate() {
            assert_eq!(pool.fetch(*pid).unwrap().data()[0], i as u8);
        }
        assert!(pool.stats().write_backs > 0, "evictions happened");
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let pool = pool(4);
        let pinned = pool.allocate().unwrap();
        pool.fetch_mut(pinned).unwrap().data_mut()[0] = 0xCC;
        let guard = pool.fetch(pinned).unwrap();
        for _ in 0..16 {
            let pid = pool.allocate().unwrap();
            pool.fetch_mut(pid).unwrap().data_mut()[0] = 1;
        }
        assert_eq!(guard.data()[0], 0xCC);
        drop(guard);
    }

    #[test]
    fn all_pinned_pool_exhausted() {
        let pool = pool(4);
        let mut guards = Vec::new();
        for _ in 0..4 {
            let pid = pool.allocate().unwrap();
            guards.push(pool.fetch(pid).unwrap());
        }
        let extra = pool.allocate().unwrap();
        assert!(matches!(pool.fetch(extra), Err(Error::PoolExhausted)));
        drop(guards);
        assert!(pool.fetch(extra).is_ok());
    }

    #[test]
    fn free_pinned_page_fails() {
        let pool = pool(8);
        let pid = pool.allocate().unwrap();
        let g = pool.fetch(pid).unwrap();
        assert!(matches!(
            pool.free(pid),
            Err(Error::PagePinned(p)) if p == u64::from(pid)
        ));
        drop(g);
        assert!(pool.free(pid).is_ok());
    }

    /// A pager whose writes fail while `fail_writes` is set — for testing
    /// write-back error handling.
    struct FlakyPager {
        inner: MemPager,
        fail_writes: std::sync::Arc<AtomicBool>,
    }

    impl Pager for FlakyPager {
        fn page_size(&self) -> usize {
            self.inner.page_size()
        }
        fn allocate(&mut self) -> Result<PageId> {
            self.inner.allocate()
        }
        fn free(&mut self, id: PageId) -> Result<()> {
            self.inner.free(id)
        }
        fn read(&mut self, id: PageId, buf: &mut [u8]) -> Result<()> {
            self.inner.read(id, buf)
        }
        fn write(&mut self, id: PageId, buf: &[u8]) -> Result<()> {
            if self.fail_writes.load(Ordering::Relaxed) {
                return Err(Error::Io(std::io::Error::other("injected write failure")));
            }
            self.inner.write(id, buf)
        }
        fn live_pages(&self) -> u64 {
            self.inner.live_pages()
        }
        fn store_bytes(&self) -> u64 {
            self.inner.store_bytes()
        }
        fn sync(&mut self) -> Result<()> {
            self.inner.sync()
        }
        fn stats(&self) -> IoStats {
            self.inner.stats()
        }
    }

    #[test]
    fn failed_write_back_keeps_page_dirty() {
        let fail = std::sync::Arc::new(AtomicBool::new(false));
        let pool = BufferPool::with_capacity(
            FlakyPager {
                inner: MemPager::new(256),
                fail_writes: std::sync::Arc::clone(&fail),
            },
            4,
        );
        let pid = pool.allocate().unwrap();
        pool.fetch_mut(pid).unwrap().data_mut()[0] = 0xAB;

        // flush() must propagate the error and leave the page dirty...
        fail.store(true, Ordering::Relaxed);
        assert!(matches!(pool.flush(), Err(Error::Io(_))));
        // ...and eviction write-back must do the same: churn until the
        // dirty page becomes the victim and the injected error surfaces.
        let mut evict_failed = false;
        for _ in 0..8 {
            let p = pool.allocate().unwrap();
            if matches!(pool.fetch(p), Err(Error::Io(_))) {
                evict_failed = true;
                break;
            }
        }
        assert!(evict_failed, "eviction never tried the dirty page");

        // Once writes succeed again the retained dirty bit must get the
        // modification to the pager — evict the page and re-read it.
        fail.store(false, Ordering::Relaxed);
        for _ in 0..8 {
            let p = pool.allocate().unwrap();
            let _ = pool.fetch(p).unwrap();
        }
        assert_eq!(pool.fetch(pid).unwrap().data()[0], 0xAB);
    }

    #[test]
    fn hit_ratio_tracked() {
        let pool = pool(8);
        let pid = pool.allocate().unwrap();
        let _ = pool.fetch(pid).unwrap();
        let _ = pool.fetch(pid).unwrap();
        let s = pool.stats();
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.cache_hits, 1);
        let ps = pool.pool_stats();
        assert_eq!(ps.totals().hits, 1);
        assert_eq!(ps.totals().misses, 1);
        assert_eq!(ps.totals().hit_ratio(), Some(0.5));
    }

    #[test]
    fn uncontended_hits_counted_single_threaded() {
        let pool = pool(8);
        let pid = pool.allocate().unwrap();
        for _ in 0..10 {
            let _ = pool.fetch(pid).unwrap();
        }
        let t = pool.pool_stats().totals();
        // First fetch misses; with no other threads, every hit is uncontended.
        assert_eq!(t.hits, 9);
        assert_eq!(t.uncontended_hits, 9);
    }

    #[test]
    fn flush_persists_through_reopen_cycle() {
        // flush() + direct pager semantics are covered with MemPager by
        // evicting everything and re-reading.
        let pool = pool(4);
        let pid = pool.allocate().unwrap();
        pool.fetch_mut(pid).unwrap().data_mut()[7] = 0x77;
        pool.flush().unwrap();
        // Evict by churning other pages.
        for _ in 0..16 {
            let p = pool.allocate().unwrap();
            let _ = pool.fetch(p).unwrap();
        }
        assert_eq!(pool.fetch(pid).unwrap().data()[7], 0x77);
    }

    #[test]
    fn concurrent_hits_spread_across_shards() {
        let pool = std::sync::Arc::new(pool(64));
        let mut pids = Vec::new();
        for i in 0..32u8 {
            let pid = pool.allocate().unwrap();
            pool.fetch_mut(pid).unwrap().data_mut()[0] = i;
            pids.push(pid);
        }
        let pids = std::sync::Arc::new(pids);
        let mut handles = Vec::new();
        for t in 0..8usize {
            let pool = std::sync::Arc::clone(&pool);
            let pids = std::sync::Arc::clone(&pids);
            handles.push(std::thread::spawn(move || {
                for round in 0..500usize {
                    let i = (t * 13 + round) % pids.len();
                    let p = pool.fetch(pids[i]).unwrap();
                    assert_eq!(p.data()[0], i as u8);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let ps = pool.pool_stats();
        assert!(ps.shard_count() > 1);
        // Hits landed on more than one shard.
        let active = ps.shards.iter().filter(|s| s.hits > 0).count();
        assert!(active > 1, "stats: {ps:?}");
        // The 32 setup fetches are all misses; the 8×500 reads all hit.
        assert_eq!(ps.totals().hits, 8 * 500);
    }
}
