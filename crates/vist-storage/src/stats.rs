//! I/O and cache statistics, reported by the index-size experiments.

/// Counters accumulated by pagers and buffer pools.
///
/// All fields are cumulative **since the pager or pool was created** —
/// i.e. since the most recent `open()`/`create()`. They are *not*
/// persisted: reopening an index resets every field (including the
/// WAL/recovery counters) to zero, deliberately — the struct answers
/// "what did this handle do", not "what has this file seen". For
/// process-lifetime accumulation across close/reopen cycles, use the
/// `vist-obs` registry (`vist_storage_*` metrics), which survives as
/// long as the process does. `Clone + Copy` so callers can snapshot and
/// diff around a measured region.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IoStats {
    /// Pages read from the backing store.
    pub reads: u64,
    /// Pages written to the backing store.
    pub writes: u64,
    /// Pages allocated.
    pub allocations: u64,
    /// Pages freed.
    pub frees: u64,
    /// Buffer-pool hits (page found cached).
    pub cache_hits: u64,
    /// Buffer-pool misses (page had to be read).
    pub cache_misses: u64,
    /// Dirty pages written back by eviction or flush.
    pub write_backs: u64,
    /// Page images appended to the write-ahead log.
    pub wal_appends: u64,
    /// Checkpoint commits (WAL commit records fsynced).
    pub wal_commits: u64,
    /// Pages replayed from the WAL during recovery-on-open.
    pub recovered_pages: u64,
    /// Uncommitted WAL tail bytes discarded during recovery-on-open.
    pub wal_discarded_bytes: u64,
}

impl IoStats {
    /// `self - earlier`, saturating — the activity between two snapshots.
    #[must_use]
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
            allocations: self.allocations.saturating_sub(earlier.allocations),
            frees: self.frees.saturating_sub(earlier.frees),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            write_backs: self.write_backs.saturating_sub(earlier.write_backs),
            wal_appends: self.wal_appends.saturating_sub(earlier.wal_appends),
            wal_commits: self.wal_commits.saturating_sub(earlier.wal_commits),
            recovered_pages: self.recovered_pages.saturating_sub(earlier.recovered_pages),
            wal_discarded_bytes: self
                .wal_discarded_bytes
                .saturating_sub(earlier.wal_discarded_bytes),
        }
    }

    /// Cache hit ratio in `[0, 1]`; `None` when no lookups happened.
    #[must_use]
    pub fn hit_ratio(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        (total > 0).then(|| self.cache_hits as f64 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_diffs_counters() {
        let a = IoStats {
            reads: 10,
            writes: 4,
            ..Default::default()
        };
        let b = IoStats {
            reads: 25,
            writes: 4,
            ..Default::default()
        };
        let d = b.since(&a);
        assert_eq!(d.reads, 15);
        assert_eq!(d.writes, 0);
    }

    #[test]
    fn hit_ratio() {
        let mut s = IoStats::default();
        assert_eq!(s.hit_ratio(), None);
        s.cache_hits = 3;
        s.cache_misses = 1;
        assert_eq!(s.hit_ratio(), Some(0.75));
    }
}
