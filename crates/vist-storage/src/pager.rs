//! The [`Pager`] trait: fixed-size page allocation and I/O.

use crate::{IoStats, Result};

/// Identifier of a page within a pager. Page ids are dense `u32`s; page 0 is
/// reserved by [`crate::FilePager`] for its header and is never handed out.
pub type PageId = u32;

/// Sentinel page id used for "null" links (e.g. end of a leaf chain).
pub const INVALID_PAGE: PageId = u32::MAX;

/// Abstraction over a store of fixed-size pages.
///
/// Implementations must hand out page ids that remain valid until
/// [`Pager::free`] is called on them, and must persist `write` data so a
/// subsequent `read` observes it. Durability across process restarts is only
/// required of [`crate::FilePager`] (after [`Pager::sync`]).
pub trait Pager: Send {
    /// Size in bytes of every page in this store.
    fn page_size(&self) -> usize;

    /// Allocate a fresh (zeroed or reused) page and return its id.
    fn allocate(&mut self) -> Result<PageId>;

    /// Return a previously allocated page to the free pool.
    fn free(&mut self, id: PageId) -> Result<()>;

    /// Read page `id` into `buf` (`buf.len() == page_size()`).
    fn read(&mut self, id: PageId, buf: &mut [u8]) -> Result<()>;

    /// Write `buf` (`buf.len() == page_size()`) to page `id`.
    fn write(&mut self, id: PageId, buf: &[u8]) -> Result<()>;

    /// Number of pages currently allocated (live, not freed).
    fn live_pages(&self) -> u64;

    /// Total size of the underlying store in bytes (including freed pages
    /// and any header); this is what "index size" experiments report.
    fn store_bytes(&self) -> u64;

    /// Flush buffered writes to durable storage.
    fn sync(&mut self) -> Result<()>;

    /// Cumulative I/O statistics.
    fn stats(&self) -> IoStats;
}

pub(crate) fn check_page_size(size: usize) -> Result<()> {
    if !(crate::MIN_PAGE_SIZE..=crate::MAX_PAGE_SIZE).contains(&size) || !size.is_power_of_two() {
        return Err(crate::Error::BadPageSize(size));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_size_validation() {
        assert!(check_page_size(4096).is_ok());
        assert!(check_page_size(128).is_ok());
        assert!(check_page_size(127).is_err());
        assert!(check_page_size(3000).is_err());
        assert!(check_page_size(1 << 17).is_err());
    }
}
