//! Minimal synchronization primitives over `std::sync`.
//!
//! The crate needs three things the standard library does not expose
//! directly with an ergonomic API:
//!
//! 1. **Poison-free guards.** A panic while holding a lock in one reader
//!    must not wedge every later reader with `PoisonError`; these wrappers
//!    simply take the inner value and continue.
//! 2. **Owned (`Arc`-backed) `RwLock` guards.** A [`crate::PageRef`] must
//!    keep the page's frame lock held while being moved around and stored,
//!    which a borrowed `RwLockReadGuard<'a>` cannot do.
//! 3. **`try_lock` contention probing** for the buffer pool's
//!    uncontended-hit counter.
//!
//! The API is a small subset of the `parking_lot` crate's, so swapping a
//! real dependency in later is a one-line change per import. Everything is
//! a thin wrapper; there is no hand-rolled lock algorithm here.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, Arc, TryLockError};

/// A mutual-exclusion lock whose guards never surface poisoning.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Create a new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is acquired.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A readers-writer lock whose guards never surface poisoning.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Borrowed shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// Borrowed exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new unlocked lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Block until shared access is acquired.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Block until exclusive access is acquired.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: 'static> RwLock<T> {
    /// Shared lock that owns a clone of the `Arc`, so the guard may outlive
    /// the borrow of `lock`.
    pub fn read_arc(lock: &Arc<RwLock<T>>) -> ArcRwLockReadGuard<T> {
        let arc = Arc::clone(lock);
        let guard = arc.0.read().unwrap_or_else(|e| e.into_inner());
        // SAFETY: the guard borrows `arc`'s inner lock; the transmute only
        // erases that lifetime. The guard is stored *before* the Arc in the
        // owned-guard struct, so it is dropped first, and the Arc keeps the
        // lock alive for the guard's whole life. The inner sync guard is
        // never moved out or leaked past the Arc.
        let guard: sync::RwLockReadGuard<'static, T> = unsafe { std::mem::transmute(guard) };
        ArcRwLockReadGuard { guard, _arc: arc }
    }

    /// Exclusive lock that owns a clone of the `Arc`.
    pub fn write_arc(lock: &Arc<RwLock<T>>) -> ArcRwLockWriteGuard<T> {
        let arc = Arc::clone(lock);
        let guard = arc.0.write().unwrap_or_else(|e| e.into_inner());
        // SAFETY: as in `read_arc`.
        let guard: sync::RwLockWriteGuard<'static, T> = unsafe { std::mem::transmute(guard) };
        ArcRwLockWriteGuard { guard, _arc: arc }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Owned shared guard: holds the lock and an `Arc` to it.
///
/// Field order is load-bearing: `guard` is declared before `_arc` so it is
/// dropped first, releasing the lock before the backing allocation can go
/// away.
pub struct ArcRwLockReadGuard<T: 'static> {
    guard: sync::RwLockReadGuard<'static, T>,
    _arc: Arc<RwLock<T>>,
}

/// Owned exclusive guard: holds the lock and an `Arc` to it.
pub struct ArcRwLockWriteGuard<T: 'static> {
    guard: sync::RwLockWriteGuard<'static, T>,
    _arc: Arc<RwLock<T>>,
}

impl<T> Deref for ArcRwLockReadGuard<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> Deref for ArcRwLockWriteGuard<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for ArcRwLockWriteGuard<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_survives_panic_while_held() {
        let m = Arc::new(Mutex::new(5));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 5, "lock usable after a holder panicked");
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn arc_guard_outlives_borrow() {
        let lock = Arc::new(RwLock::new(vec![1, 2, 3]));
        let guard = {
            let borrowed = &lock;
            RwLock::read_arc(borrowed)
        };
        drop(lock);
        assert_eq!(*guard, vec![1, 2, 3]);
    }

    #[test]
    fn write_arc_then_read() {
        let lock = Arc::new(RwLock::new(0u32));
        {
            let mut g = RwLock::write_arc(&lock);
            *g = 7;
        }
        assert_eq!(*lock.read(), 7);
    }

    #[test]
    fn many_concurrent_readers() {
        let lock = Arc::new(RwLock::new(42u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        assert_eq!(*RwLock::read_arc(&lock), 42);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
