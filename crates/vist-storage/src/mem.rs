//! In-memory pager, used for tests and transient indexes.

use crate::pager::check_page_size;
use crate::{Error, IoStats, PageId, Pager, Result};

/// A [`Pager`] backed by heap memory.
///
/// Freed pages are recycled in LIFO order. Reads of never-written pages see
/// zeroes, matching [`crate::FilePager`] semantics.
pub struct MemPager {
    page_size: usize,
    pages: Vec<Option<Box<[u8]>>>,
    free: Vec<PageId>,
    stats: IoStats,
}

impl MemPager {
    /// Create an empty in-memory pager with the given page size.
    ///
    /// # Panics
    /// Panics if `page_size` is unsupported (use powers of two in
    /// `[MIN_PAGE_SIZE, MAX_PAGE_SIZE]`).
    #[must_use]
    pub fn new(page_size: usize) -> Self {
        check_page_size(page_size).expect("unsupported page size");
        MemPager {
            page_size,
            pages: Vec::new(),
            free: Vec::new(),
            stats: IoStats::default(),
        }
    }

    fn slot(&self, id: PageId) -> Result<usize> {
        let idx = id as usize;
        if idx >= self.pages.len() || self.pages[idx].is_none() {
            return Err(Error::InvalidPage(u64::from(id)));
        }
        Ok(idx)
    }
}

impl Pager for MemPager {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn allocate(&mut self) -> Result<PageId> {
        self.stats.allocations += 1;
        if let Some(id) = self.free.pop() {
            self.pages[id as usize] = Some(vec![0u8; self.page_size].into_boxed_slice());
            return Ok(id);
        }
        let id = PageId::try_from(self.pages.len())
            .map_err(|_| Error::Corrupt("page id space exhausted".into()))?;
        if id == crate::INVALID_PAGE {
            return Err(Error::Corrupt("page id space exhausted".into()));
        }
        self.pages
            .push(Some(vec![0u8; self.page_size].into_boxed_slice()));
        Ok(id)
    }

    fn free(&mut self, id: PageId) -> Result<()> {
        let idx = self.slot(id)?;
        self.pages[idx] = None;
        self.free.push(id);
        self.stats.frees += 1;
        Ok(())
    }

    fn read(&mut self, id: PageId, buf: &mut [u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), self.page_size);
        let idx = self.slot(id)?;
        buf.copy_from_slice(self.pages[idx].as_ref().expect("checked by slot"));
        self.stats.reads += 1;
        Ok(())
    }

    fn write(&mut self, id: PageId, buf: &[u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), self.page_size);
        let idx = self.slot(id)?;
        self.pages[idx]
            .as_mut()
            .expect("checked by slot")
            .copy_from_slice(buf);
        self.stats.writes += 1;
        Ok(())
    }

    fn live_pages(&self) -> u64 {
        (self.pages.len() - self.free.len()) as u64
    }

    fn store_bytes(&self) -> u64 {
        (self.pages.len() * self.page_size) as u64
    }

    fn sync(&mut self) -> Result<()> {
        Ok(())
    }

    fn stats(&self) -> IoStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_write_read_roundtrip() {
        let mut p = MemPager::new(256);
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        assert_ne!(a, b);
        let mut buf = vec![0u8; 256];
        buf[0] = 0xAB;
        p.write(a, &buf).unwrap();
        let mut out = vec![0u8; 256];
        p.read(a, &mut out).unwrap();
        assert_eq!(out[0], 0xAB);
        p.read(b, &mut out).unwrap();
        assert_eq!(out[0], 0, "fresh page reads as zeroes");
    }

    #[test]
    fn free_recycles_and_zeroes() {
        let mut p = MemPager::new(256);
        let a = p.allocate().unwrap();
        let buf = vec![0xFFu8; 256];
        p.write(a, &buf).unwrap();
        p.free(a).unwrap();
        assert!(
            p.read(a, &mut vec![0u8; 256]).is_err(),
            "freed page invalid"
        );
        let a2 = p.allocate().unwrap();
        assert_eq!(a, a2, "LIFO recycling");
        let mut out = vec![0xEEu8; 256];
        p.read(a2, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0), "recycled page is zeroed");
    }

    #[test]
    fn live_pages_and_store_bytes() {
        let mut p = MemPager::new(256);
        let a = p.allocate().unwrap();
        let _b = p.allocate().unwrap();
        assert_eq!(p.live_pages(), 2);
        assert_eq!(p.store_bytes(), 512);
        p.free(a).unwrap();
        assert_eq!(p.live_pages(), 1);
        assert_eq!(p.store_bytes(), 512, "store size does not shrink");
    }

    #[test]
    fn stats_count_operations() {
        let mut p = MemPager::new(256);
        let a = p.allocate().unwrap();
        p.write(a, &vec![0u8; 256]).unwrap();
        p.read(a, &mut vec![0u8; 256]).unwrap();
        p.free(a).unwrap();
        let s = p.stats();
        assert_eq!((s.allocations, s.writes, s.reads, s.frees), (1, 1, 1, 1));
    }

    #[test]
    #[should_panic(expected = "unsupported page size")]
    fn bad_page_size_panics() {
        let _ = MemPager::new(100);
    }
}
