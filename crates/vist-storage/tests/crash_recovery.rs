//! Exhaustive crash-recovery property tests.
//!
//! For a seeded workload of allocate / write / free / checkpoint operations,
//! a clean run counts every file-system operation it performs (`T`). Then,
//! for **every** injection point `N in 0..T`, the workload is re-run with a
//! crash at operation `N` — the scheduled write persists only a seeded torn
//! prefix, and everything after fails as if the process died. The store is
//! then reopened for real and must equal, page for page, the last oracle
//! snapshot that a checkpoint made durable (or, when the crash hit inside a
//! checkpoint, either that snapshot or the one the checkpoint was
//! committing — the commit record may or may not have reached disk).
//!
//! On top of that, every crashed state is recovered *through another crash
//! sweep*: recovery itself is interrupted at each of its operations, and the
//! store reopened for real afterwards — recovery-during-recovery must
//! converge to the same snapshot.
//!
//! Environment knobs (used by the CI crash-matrix job):
//! * `VIST_CRASH_SEEDS`  — comma-separated workload seeds (default `1`)
//! * `VIST_CRASH_STEPS`  — workload length (default `24`)
//! * `VIST_CRASH_PAGE_SIZES` — comma-separated page sizes (default `256`)

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use vist_storage::testutil::TempDir;
use vist_storage::{BufferPool, FaultMode, FaultVfs, FilePager, PageId, Pager, RealVfs, Vfs};

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = splitmix(self.0);
        self.0
    }
}

fn page_image(page_size: usize, tag: u64) -> Vec<u8> {
    let mut v = Vec::with_capacity(page_size + 8);
    let mut x = tag;
    while v.len() < page_size {
        x = splitmix(x);
        v.extend_from_slice(&x.to_le_bytes());
    }
    v.truncate(page_size);
    v
}

/// Oracle: the full durable state a checkpoint promises.
#[derive(Clone, Default, PartialEq)]
struct Snapshot {
    pages: HashMap<PageId, Vec<u8>>,
    live: u64,
}

enum RunEnd {
    /// The workload finished; the final checkpoint's snapshot is the state.
    Completed(Snapshot),
    /// An injected crash stopped the run; the recovered store must equal
    /// one of these snapshots.
    Crashed(Vec<Snapshot>),
    /// The crash hit before the store finished creating: reopening may
    /// fail, but if it succeeds the store must be empty.
    CreateCrashed,
}

/// The workload's action stream, identical for the pager- and pool-level
/// drivers: the RNG is consumed in the same order regardless of faults.
enum Action {
    AllocWrite(u64),
    AllocOnly,
    Rewrite(u64, u64),
    Free(u64),
    Checkpoint,
}

fn next_action(rng: &mut Rng) -> Action {
    let r = rng.next();
    match r % 10 {
        0..=2 => Action::AllocWrite(rng.next()),
        3 => Action::AllocOnly,
        4..=6 => Action::Rewrite(r >> 4, rng.next()),
        7 => Action::Free(r >> 4),
        _ => Action::Checkpoint,
    }
}

/// Drive a seeded workload straight against a [`FilePager`].
fn run_pager_workload(
    vfs: &dyn Vfs,
    path: &Path,
    page_size: usize,
    seed: u64,
    steps: u64,
) -> RunEnd {
    let Ok(mut pager) = FilePager::create_with_vfs(vfs, path, page_size) else {
        return RunEnd::CreateCrashed;
    };
    let mut rng = Rng(seed);
    let mut model: HashMap<PageId, Vec<u8>> = HashMap::new();
    let mut live: Vec<PageId> = Vec::new();
    let mut durable = Snapshot::default();

    let snap = |model: &HashMap<PageId, Vec<u8>>, live: &Vec<PageId>| Snapshot {
        pages: model.clone(),
        live: live.len() as u64,
    };

    for _ in 0..=steps {
        let action = next_action(&mut rng);
        match action {
            Action::AllocWrite(tag) => {
                let Ok(id) = pager.allocate() else {
                    return RunEnd::Crashed(vec![durable]);
                };
                let img = page_image(page_size, tag);
                if pager.write(id, &img).is_err() {
                    return RunEnd::Crashed(vec![durable]);
                }
                model.insert(id, img);
                live.push(id);
            }
            Action::AllocOnly => {
                let Ok(id) = pager.allocate() else {
                    return RunEnd::Crashed(vec![durable]);
                };
                model.insert(id, vec![0u8; page_size]);
                live.push(id);
            }
            Action::Rewrite(pick, tag) => {
                if live.is_empty() {
                    continue;
                }
                let id = live[pick as usize % live.len()];
                let img = page_image(page_size, tag);
                if pager.write(id, &img).is_err() {
                    return RunEnd::Crashed(vec![durable]);
                }
                model.insert(id, img);
            }
            Action::Free(pick) => {
                if live.is_empty() {
                    continue;
                }
                let id = live.swap_remove(pick as usize % live.len());
                if pager.free(id).is_err() {
                    return RunEnd::Crashed(vec![durable]);
                }
                model.remove(&id);
            }
            Action::Checkpoint => {
                let attempt = snap(&model, &live);
                match pager.sync() {
                    Ok(()) => durable = attempt,
                    Err(_) => return RunEnd::Crashed(vec![durable, attempt]),
                }
            }
        }
    }
    let attempt = snap(&model, &live);
    match pager.sync() {
        Ok(()) => RunEnd::Completed(attempt),
        Err(_) => RunEnd::Crashed(vec![durable, attempt]),
    }
}

/// The same workload through a small [`BufferPool`], so crash points also
/// land inside eviction write-backs and pool flushes.
fn run_pool_workload(
    vfs: &dyn Vfs,
    path: &Path,
    page_size: usize,
    seed: u64,
    steps: u64,
) -> RunEnd {
    let Ok(pager) = FilePager::create_with_vfs(vfs, path, page_size) else {
        return RunEnd::CreateCrashed;
    };
    let pool = BufferPool::with_capacity(pager, 4);
    let mut rng = Rng(seed);
    let mut model: HashMap<PageId, Vec<u8>> = HashMap::new();
    let mut live: Vec<PageId> = Vec::new();
    let mut durable = Snapshot::default();

    let write = |pool: &BufferPool, id: PageId, img: &[u8]| -> bool {
        match pool.fetch_mut(id) {
            Ok(mut page) => {
                page.data_mut().copy_from_slice(img);
                true
            }
            Err(_) => false,
        }
    };

    for _ in 0..=steps {
        match next_action(&mut rng) {
            Action::AllocWrite(tag) => {
                let Ok(id) = pool.allocate() else {
                    return RunEnd::Crashed(vec![durable]);
                };
                let img = page_image(page_size, tag);
                if !write(&pool, id, &img) {
                    return RunEnd::Crashed(vec![durable]);
                }
                model.insert(id, img);
                live.push(id);
            }
            Action::AllocOnly => {
                let Ok(id) = pool.allocate() else {
                    return RunEnd::Crashed(vec![durable]);
                };
                model.insert(id, vec![0u8; page_size]);
                live.push(id);
            }
            Action::Rewrite(pick, tag) => {
                if live.is_empty() {
                    continue;
                }
                let id = live[pick as usize % live.len()];
                let img = page_image(page_size, tag);
                if !write(&pool, id, &img) {
                    return RunEnd::Crashed(vec![durable]);
                }
                model.insert(id, img);
            }
            Action::Free(pick) => {
                if live.is_empty() {
                    continue;
                }
                let id = live.swap_remove(pick as usize % live.len());
                if pool.free(id).is_err() {
                    return RunEnd::Crashed(vec![durable]);
                }
                model.remove(&id);
            }
            Action::Checkpoint => {
                let attempt = Snapshot {
                    pages: model.clone(),
                    live: live.len() as u64,
                };
                match pool.flush() {
                    Ok(()) => durable = attempt,
                    Err(_) => return RunEnd::Crashed(vec![durable, attempt]),
                }
            }
        }
    }
    let attempt = Snapshot {
        pages: model.clone(),
        live: live.len() as u64,
    };
    match pool.flush() {
        Ok(()) => RunEnd::Completed(attempt),
        Err(_) => RunEnd::Crashed(vec![durable, attempt]),
    }
}

fn matches_snapshot(pager: &mut FilePager, page_size: usize, snap: &Snapshot) -> bool {
    if pager.live_pages() != snap.live {
        return false;
    }
    let mut buf = vec![0u8; page_size];
    for (&id, img) in &snap.pages {
        if pager.read(id, &mut buf).is_err() || buf != *img {
            return false;
        }
    }
    true
}

/// Reopen for real; the store must equal one of `candidates` and still be
/// fully usable afterwards.
fn verify_recovered(path: &Path, page_size: usize, candidates: &[Snapshot], ctx: &str) {
    let mut pager =
        FilePager::open(path).unwrap_or_else(|e| panic!("{ctx}: recovered open failed: {e}"));
    assert!(
        candidates
            .iter()
            .any(|s| matches_snapshot(&mut pager, page_size, s)),
        "{ctx}: recovered store matches no candidate snapshot \
         (live={}, candidates have live counts {:?})",
        pager.live_pages(),
        candidates.iter().map(|s| s.live).collect::<Vec<_>>(),
    );
    // The recovered store must keep working: allocate, write, read, sync.
    let id = pager.allocate().unwrap_or_else(|e| panic!("{ctx}: {e}"));
    let img = page_image(page_size, 0xDEAD);
    pager
        .write(id, &img)
        .unwrap_or_else(|e| panic!("{ctx}: {e}"));
    let mut buf = vec![0u8; page_size];
    pager
        .read(id, &mut buf)
        .unwrap_or_else(|e| panic!("{ctx}: {e}"));
    assert_eq!(buf, img, "{ctx}: post-recovery write readback");
    pager
        .sync()
        .unwrap_or_else(|e| panic!("{ctx}: post-recovery sync: {e}"));
}

fn clear_store(path: &Path) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(FilePager::wal_path(path));
}

struct StoreBackup {
    data: Option<Vec<u8>>,
    wal: Option<Vec<u8>>,
}

fn backup_store(path: &Path) -> StoreBackup {
    StoreBackup {
        data: std::fs::read(path).ok(),
        wal: std::fs::read(FilePager::wal_path(path)).ok(),
    }
}

fn restore_store(path: &Path, backup: &StoreBackup) {
    clear_store(path);
    if let Some(d) = &backup.data {
        std::fs::write(path, d).unwrap();
    }
    if let Some(w) = &backup.wal {
        std::fs::write(FilePager::wal_path(path), w).unwrap();
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_u64_list(name: &str, default: &[u64]) -> Vec<u64> {
    std::env::var(name)
        .ok()
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .filter(|v: &Vec<u64>| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

type Driver = fn(&dyn Vfs, &Path, usize, u64, u64) -> RunEnd;

/// The sweep: crash at every op index, recover, verify; then crash the
/// recovery at every one of *its* op indices and verify again.
fn crash_sweep(driver: Driver, label: &str, sweep_recovery: bool) {
    let steps = env_u64("VIST_CRASH_STEPS", 24);
    let seeds = env_u64_list("VIST_CRASH_SEEDS", &[1]);
    let page_sizes = env_u64_list("VIST_CRASH_PAGE_SIZES", &[256]);
    let dir = TempDir::new(&format!("crash-{label}"));
    let path = dir.file("store");

    for &seed in &seeds {
        for &ps in &page_sizes {
            let page_size = ps as usize;

            // Clean run: establish the op count and the expected end state.
            clear_store(&path);
            let clean_vfs = FaultVfs::new(Arc::new(RealVfs));
            let total_ops = match driver(&clean_vfs, &path, page_size, seed, steps) {
                RunEnd::Completed(fin) => {
                    verify_recovered(&path, page_size, &[fin], "clean run");
                    clean_vfs.handle().op_count()
                }
                _ => panic!("clean run must complete"),
            };
            assert!(total_ops > 10, "workload too small to be interesting");

            for n in 0..total_ops {
                let ctx = format!("{label} seed={seed} ps={page_size} crash@{n}");
                clear_store(&path);
                let vfs = FaultVfs::new(Arc::new(RealVfs));
                vfs.handle().schedule(n, FaultMode::Crash, seed ^ n);
                match driver(&vfs, &path, page_size, seed, steps) {
                    RunEnd::Completed(fin) => {
                        // The crash landed on an op the run never reached
                        // (can happen only for n == total_ops - 1 races; in
                        // a deterministic run it should not happen at all).
                        verify_recovered(&path, page_size, &[fin], &ctx);
                    }
                    RunEnd::CreateCrashed => {
                        // Creation never finished: opening may fail, but a
                        // successful open must yield an empty, usable store.
                        if FilePager::open(&path).is_ok() {
                            verify_recovered(&path, page_size, &[Snapshot::default()], &ctx);
                        }
                    }
                    RunEnd::Crashed(candidates) => {
                        if sweep_recovery {
                            // Crash the *recovery* at each of its own ops,
                            // then recover for real from whatever that left.
                            let crashed = backup_store(&path);
                            let probe = FaultVfs::new(Arc::new(RealVfs));
                            FilePager::open_with_vfs(&probe, &path)
                                .unwrap_or_else(|e| panic!("{ctx}: recovery probe: {e}"));
                            let recovery_ops = probe.handle().op_count();
                            for m in 0..recovery_ops {
                                restore_store(&path, &crashed);
                                let rvfs = FaultVfs::new(Arc::new(RealVfs));
                                rvfs.handle().schedule(m, FaultMode::Crash, seed ^ n ^ m);
                                assert!(
                                    FilePager::open_with_vfs(&rvfs, &path).is_err(),
                                    "{ctx}: recovery crash@{m} must not open"
                                );
                                verify_recovered(
                                    &path,
                                    page_size,
                                    &candidates,
                                    &format!("{ctx} recovery-crash@{m}"),
                                );
                            }
                            restore_store(&path, &crashed);
                        }
                        verify_recovered(&path, page_size, &candidates, &ctx);
                    }
                }
            }
        }
    }
}

#[test]
fn pager_crash_at_every_op_recovers_to_last_checkpoint() {
    crash_sweep(run_pager_workload, "pager", true);
}

#[test]
fn pool_crash_at_every_op_recovers_to_last_checkpoint() {
    crash_sweep(run_pool_workload, "pool", false);
}
