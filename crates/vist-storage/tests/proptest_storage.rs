//! Randomized differential tests: the file pager must behave exactly like
//! the in-memory pager under arbitrary allocate/free/write/read sequences,
//! and survive reopen at any flush point.
//!
//! Uses a seeded splitmix64 generator so every run explores the same op
//! sequences (failures are reproducible from the printed seed).

use vist_storage::{FilePager, MemPager, Pager};

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

#[derive(Debug, Clone)]
enum Op {
    Allocate,
    /// Free the i-th live page (mod live count).
    Free(usize),
    /// Write a byte pattern to the i-th live page.
    Write(usize, u8),
    /// Read and compare the i-th live page.
    Read(usize),
}

fn random_ops(rng: &mut Rng, n: usize) -> Vec<Op> {
    (0..n)
        .map(|_| match rng.below(9) {
            0..=2 => Op::Allocate,
            3 => Op::Free(rng.below(1 << 16)),
            4..=6 => Op::Write(rng.below(1 << 16), rng.next() as u8),
            _ => Op::Read(rng.below(1 << 16)),
        })
        .collect()
}

fn run_ops(file: &mut FilePager, mem: &mut MemPager, ops: &[Op]) {
    const PS: usize = 256;
    // Live pages as (file_pid, mem_pid) pairs.
    let mut live: Vec<(u32, u32)> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Allocate => {
                let f = file.allocate().unwrap();
                let m = mem.allocate().unwrap();
                live.push((f, m));
            }
            Op::Free(ix) => {
                if live.is_empty() {
                    continue;
                }
                let (f, m) = live.remove(ix % live.len());
                file.free(f).unwrap();
                mem.free(m).unwrap();
            }
            Op::Write(ix, byte) => {
                if live.is_empty() {
                    continue;
                }
                let (f, m) = live[ix % live.len()];
                let buf = vec![*byte; PS];
                file.write(f, &buf).unwrap();
                mem.write(m, &buf).unwrap();
            }
            Op::Read(ix) => {
                if live.is_empty() {
                    continue;
                }
                let (f, m) = live[ix % live.len()];
                let mut bf = vec![0u8; PS];
                let mut bm = vec![1u8; PS];
                file.read(f, &mut bf).unwrap();
                mem.read(m, &mut bm).unwrap();
                assert_eq!(bf, bm, "op {i}: page contents diverge");
            }
        }
        assert_eq!(file.live_pages(), mem.live_pages(), "op {i}");
    }
    // Final sweep: every live page identical.
    for (f, m) in &live {
        let mut bf = vec![0u8; PS];
        let mut bm = vec![1u8; PS];
        file.read(*f, &mut bf).unwrap();
        mem.read(*m, &mut bm).unwrap();
        assert_eq!(bf, bm);
    }
}

#[test]
fn file_pager_matches_mem_pager() {
    for case in 0..32u64 {
        let mut rng = Rng(0xD1FF ^ case);
        let len = 1 + rng.below(199);
        let ops = random_ops(&mut rng, len);
        let path =
            std::env::temp_dir().join(format!("vist-pager-prop-{}-{case}", std::process::id()));
        {
            let mut file = FilePager::create(&path, 256).unwrap();
            let mut mem = MemPager::new(256);
            run_ops(&mut file, &mut mem, &ops);
        }
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn reopen_preserves_pages() {
    for case in 0..16u64 {
        let mut rng = Rng(0xBEEF ^ case);
        let writes: Vec<u8> = (0..1 + rng.below(39)).map(|_| rng.next() as u8).collect();
        let path =
            std::env::temp_dir().join(format!("vist-pager-reopen-{}-{case}", std::process::id()));
        let mut pids = Vec::new();
        {
            let mut p = FilePager::create(&path, 256).unwrap();
            for b in &writes {
                let pid = p.allocate().unwrap();
                p.write(pid, &vec![*b; 256]).unwrap();
                pids.push((pid, *b));
            }
            p.sync().unwrap();
        }
        {
            let mut p = FilePager::open(&path).unwrap();
            assert_eq!(p.live_pages(), writes.len() as u64);
            for (pid, b) in &pids {
                let mut buf = vec![0u8; 256];
                p.read(*pid, &mut buf).unwrap();
                assert!(buf.iter().all(|x| x == b));
            }
        }
        let _ = std::fs::remove_file(&path);
    }
}
