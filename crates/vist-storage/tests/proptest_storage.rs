//! Property tests: the file pager must behave exactly like the in-memory
//! pager under arbitrary allocate/free/write/read sequences, and survive
//! reopen at any flush point.

use proptest::prelude::*;
use vist_storage::{FilePager, MemPager, Pager};

#[derive(Debug, Clone)]
enum Op {
    Allocate,
    /// Free the i-th live page (mod live count).
    Free(usize),
    /// Write a byte pattern to the i-th live page.
    Write(usize, u8),
    /// Read and compare the i-th live page.
    Read(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => Just(Op::Allocate),
        1 => any::<usize>().prop_map(Op::Free),
        3 => (any::<usize>(), any::<u8>()).prop_map(|(i, b)| Op::Write(i, b)),
        2 => any::<usize>().prop_map(Op::Read),
    ]
}

fn run_ops(file: &mut FilePager, mem: &mut MemPager, ops: &[Op]) {
    const PS: usize = 256;
    // Live pages as (file_pid, mem_pid) pairs.
    let mut live: Vec<(u32, u32)> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Allocate => {
                let f = file.allocate().unwrap();
                let m = mem.allocate().unwrap();
                live.push((f, m));
            }
            Op::Free(ix) => {
                if live.is_empty() {
                    continue;
                }
                let (f, m) = live.remove(ix % live.len());
                file.free(f).unwrap();
                mem.free(m).unwrap();
            }
            Op::Write(ix, byte) => {
                if live.is_empty() {
                    continue;
                }
                let (f, m) = live[ix % live.len()];
                let buf = vec![*byte; PS];
                file.write(f, &buf).unwrap();
                mem.write(m, &buf).unwrap();
            }
            Op::Read(ix) => {
                if live.is_empty() {
                    continue;
                }
                let (f, m) = live[ix % live.len()];
                let mut bf = vec![0u8; PS];
                let mut bm = vec![1u8; PS];
                file.read(f, &mut bf).unwrap();
                mem.read(m, &mut bm).unwrap();
                assert_eq!(bf, bm, "op {i}: page contents diverge");
            }
        }
        assert_eq!(file.live_pages(), mem.live_pages(), "op {i}");
    }
    // Final sweep: every live page identical.
    for (f, m) in &live {
        let mut bf = vec![0u8; PS];
        let mut bm = vec![1u8; PS];
        file.read(*f, &mut bf).unwrap();
        mem.read(*m, &mut bm).unwrap();
        assert_eq!(bf, bm);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn file_pager_matches_mem_pager(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let path = std::env::temp_dir().join(format!(
            "vist-pager-prop-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        {
            let mut file = FilePager::create(&path, 256).unwrap();
            let mut mem = MemPager::new(256);
            run_ops(&mut file, &mut mem, &ops);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reopen_preserves_pages(
        writes in proptest::collection::vec(any::<u8>(), 1..40),
    ) {
        let path = std::env::temp_dir().join(format!(
            "vist-pager-reopen-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let mut pids = Vec::new();
        {
            let mut p = FilePager::create(&path, 256).unwrap();
            for b in &writes {
                let pid = p.allocate().unwrap();
                p.write(pid, &vec![*b; 256]).unwrap();
                pids.push((pid, *b));
            }
            p.sync().unwrap();
        }
        {
            let mut p = FilePager::open(&path).unwrap();
            prop_assert_eq!(p.live_pages(), writes.len() as u64);
            for (pid, b) in &pids {
                let mut buf = vec![0u8; 256];
                p.read(*pid, &mut buf).unwrap();
                prop_assert!(buf.iter().all(|x| x == b));
            }
        }
        let _ = std::fs::remove_file(&path);
    }
}
