//! Torn-write and corruption tests: every single-byte flip and every
//! truncation point of the data file and the write-ahead log must yield
//! either a correct recovery or a precise structured error — never a panic,
//! and never a silently wrong answer.

use std::path::Path;
use std::sync::Arc;

use vist_storage::testutil::TempDir;
use vist_storage::{Error, FaultMode, FaultVfs, FilePager, PageId, Pager, RealVfs};

const PS: usize = 128;

fn corruption_error(e: &Error) -> bool {
    matches!(
        e,
        Error::Io(_)
            | Error::Corrupt(_)
            | Error::BadMagic { .. }
            | Error::ChecksumMismatch { .. }
            | Error::TruncatedWal { .. }
    )
}

/// Build a checkpointed store: one page holding `0x11` everywhere.
fn build_clean(path: &Path) -> PageId {
    let mut p = FilePager::create(path, PS).unwrap();
    let id = p.allocate().unwrap();
    p.write(id, &[0x11u8; PS]).unwrap();
    p.sync().unwrap();
    id
}

/// Open and read page `id`; the result must be a structured error or one of
/// `valid_fills` — anything else (panic, other bytes) fails the test.
fn check_open_and_read(path: &Path, id: PageId, valid_fills: &[u8], ctx: &str) {
    match FilePager::open(path) {
        Err(e) => assert!(corruption_error(&e), "{ctx}: unstructured error {e:?}"),
        Ok(mut p) => {
            let mut buf = vec![0u8; PS];
            match p.read(id, &mut buf) {
                Err(e) => assert!(corruption_error(&e), "{ctx}: unstructured error {e:?}"),
                Ok(()) => {
                    let fill = buf[5];
                    assert!(
                        valid_fills.contains(&fill) && buf.iter().all(|&b| b == fill),
                        "{ctx}: read returned bytes from no committed state"
                    );
                }
            }
        }
    }
}

#[test]
fn every_data_file_byte_flip_is_detected_or_harmless() {
    let dir = TempDir::new("torn-dataflip");
    let path = dir.file("store");
    let id = build_clean(&path);
    let pristine = std::fs::read(&path).unwrap();
    for off in 0..pristine.len() {
        let mut bytes = pristine.clone();
        bytes[off] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        // A flip lands in a payload, a CRC, or reserved trailer padding.
        // The first two must surface as errors; padding flips are harmless.
        check_open_and_read(&path, id, &[0x11], &format!("flip data byte {off}"));
    }
}

#[test]
fn every_data_file_truncation_is_detected() {
    let dir = TempDir::new("torn-datacut");
    let path = dir.file("store");
    let id = build_clean(&path);
    let pristine = std::fs::read(&path).unwrap();
    for cut in 0..pristine.len() {
        std::fs::write(&path, &pristine[..cut]).unwrap();
        check_open_and_read(&path, id, &[0x11], &format!("truncate data at {cut}"));
    }
}

/// Crash states around a checkpoint: the WAL holds a full update of the page
/// (`0x22`) over a checkpointed `0x11`. Returns `(data, wal)` file images
/// for every distinct crash point inside the second checkpoint.
fn crashed_states(dir: &TempDir) -> Vec<(Vec<u8>, Vec<u8>)> {
    let path = dir.file("probe");
    let wal_path = FilePager::wal_path(&path);
    let mut states = Vec::new();
    // Crash the second sync at its `n`th operation; returns whether the
    // sync survived (the fault landed beyond its op range).
    let run = |vfs: &FaultVfs, fault_at: Option<u64>| -> bool {
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&wal_path);
        let mut p = FilePager::create_with_vfs(vfs, &path, PS).unwrap();
        let id = p.allocate().unwrap();
        p.write(id, &[0x11u8; PS]).unwrap();
        p.sync().unwrap();
        p.write(id, &[0x22u8; PS]).unwrap();
        if let Some(n) = fault_at {
            let h = vfs.handle();
            h.schedule(h.op_count() + n, FaultMode::Crash, n.wrapping_mul(31));
        }
        p.sync().is_ok()
    };
    for n in 0.. {
        let vfs = FaultVfs::new(Arc::new(RealVfs));
        if run(&vfs, Some(n)) {
            break; // the whole sync completed; no more crash points
        }
        let wal = std::fs::read(&wal_path).unwrap();
        if wal.len() > 16 {
            states.push((std::fs::read(&path).unwrap(), wal));
        }
    }
    assert!(!states.is_empty(), "no crash state left a non-empty wal");
    states
}

fn restore(path: &Path, wal_path: &Path, data: &[u8], wal: &[u8]) {
    std::fs::write(path, data).unwrap();
    std::fs::write(wal_path, wal).unwrap();
}

#[test]
fn every_wal_truncation_recovers_a_committed_state() {
    let dir = TempDir::new("torn-walcut");
    let states = crashed_states(&dir);
    let path = dir.file("store");
    let wal_path = FilePager::wal_path(&path);
    // Page 1 is the only page the workload touches.
    for (si, (data, wal)) in states.iter().enumerate() {
        for cut in 0..wal.len() {
            restore(&path, &wal_path, data, &wal[..cut]);
            check_open_and_read(
                &path,
                1,
                &[0x11, 0x22],
                &format!("state {si} wal cut {cut}"),
            );
        }
    }
}

#[test]
fn every_wal_byte_flip_recovers_or_errors() {
    let dir = TempDir::new("torn-walflip");
    let states = crashed_states(&dir);
    let path = dir.file("store");
    let wal_path = FilePager::wal_path(&path);
    for (si, (data, wal)) in states.iter().enumerate() {
        for off in 0..wal.len() {
            let mut flipped = wal.clone();
            flipped[off] ^= 0x08;
            restore(&path, &wal_path, data, &flipped);
            check_open_and_read(
                &path,
                1,
                &[0x11, 0x22],
                &format!("state {si} wal flip {off}"),
            );
        }
    }
}

#[test]
fn missing_wal_is_fine_missing_data_is_not() {
    let dir = TempDir::new("torn-missing");
    let path = dir.file("store");
    let id = build_clean(&path);
    // A checkpointed store with its (empty) log deleted opens fine.
    std::fs::remove_file(FilePager::wal_path(&path)).unwrap();
    let mut p = FilePager::open(&path).unwrap();
    let mut buf = vec![0u8; PS];
    p.read(id, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 0x11));
    drop(p);
    // A log without its data file is not a store.
    std::fs::remove_file(&path).unwrap();
    match FilePager::open(&path) {
        Err(e) => assert!(corruption_error(&e)),
        Ok(_) => panic!("opened a store with no data file"),
    }
}
