//! Property tests for the sequence layer: key-order laws, prefix-matching
//! laws, and conversion invariants.

use proptest::prelude::*;
use vist_seq::{
    dkey, document_to_sequence, PathSym, Prefix, SiblingOrder, Sym, Symbol, SymbolTable,
};
use vist_xml::{Document, ElementBuilder};

fn sym_strategy() -> impl Strategy<Value = Sym> {
    prop_oneof![
        (0u32..50).prop_map(|i| Sym::Tag(Symbol(i))),
        any::<u64>().prop_map(Sym::Value),
    ]
}

fn prefix_strategy() -> impl Strategy<Value = Vec<Symbol>> {
    proptest::collection::vec((0u32..20).prop_map(Symbol), 0..6)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// The D-Ancestor key encoding must order by (symbol, prefix length,
    /// prefix content) — the exact ordering the paper requires for wildcard
    /// range queries.
    #[test]
    fn dkey_order_law(
        a_sym in sym_strategy(), a_pre in prefix_strategy(),
        b_sym in sym_strategy(), b_pre in prefix_strategy(),
    ) {
        let ka = dkey::encode(a_sym, &a_pre);
        let kb = dkey::encode(b_sym, &b_pre);
        let logical = (a_sym.encode(), a_pre.len(), a_pre.clone())
            .cmp(&(b_sym.encode(), b_pre.len(), b_pre.clone()));
        prop_assert_eq!(ka.cmp(&kb), logical);
        // And decoding inverts encoding.
        prop_assert_eq!(dkey::decode(&ka), (a_sym, a_pre));
    }

    /// `*` consumes exactly one symbol: a pattern with k stars and t tags
    /// (no `//`) matches only prefixes of length k + t.
    #[test]
    fn star_pattern_length_law(
        steps in proptest::collection::vec(
            prop_oneof![(0u32..5).prop_map(|i| PathSym::Tag(Symbol(i))), Just(PathSym::Star)],
            0..6,
        ),
        data in prefix_strategy(),
    ) {
        let pat = Prefix(steps.clone());
        if pat.matches(&data) {
            prop_assert_eq!(steps.len(), data.len());
        }
    }

    /// `//` is monotone: if a pattern with a `//` matches some data prefix,
    /// inserting extra symbols at the `//` position still matches.
    #[test]
    fn dslash_monotonicity(
        head in proptest::collection::vec((0u32..5).prop_map(Symbol), 0..3),
        tail in proptest::collection::vec((0u32..5).prop_map(Symbol), 0..3),
        insert in (0u32..5).prop_map(Symbol),
    ) {
        let mut steps: Vec<PathSym> = head.iter().map(|&s| PathSym::Tag(s)).collect();
        steps.push(PathSym::DoubleSlash);
        steps.extend(tail.iter().map(|&s| PathSym::Tag(s)));
        let pat = Prefix(steps);

        let data: Vec<Symbol> = head.iter().chain(tail.iter()).copied().collect();
        prop_assert!(pat.matches(&data), "zero-width // must match");
        let mut widened = head.clone();
        widened.push(insert);
        widened.extend(tail.iter().copied());
        prop_assert!(pat.matches(&widened), "one inserted symbol must match");
    }

    /// Document → sequence: element count preserved, prefixes nest (each
    /// element's prefix extends some earlier element's prefix by exactly its
    /// symbol), and the symbol kinds match the node kinds.
    #[test]
    fn conversion_invariants(doc in doc_strategy()) {
        let mut table = SymbolTable::new();
        let seq = document_to_sequence(&doc, &mut table, &SiblingOrder::Lexicographic);
        // Count: every element + attribute (+ its value) + non-ws text.
        let mut expected = 0usize;
        for id in doc.preorder() {
            if doc.is_element(id) {
                expected += 1 + 2 * doc.attributes(id).len();
            } else if !doc.text(id).unwrap_or("").trim().is_empty() {
                expected += 1;
            }
        }
        prop_assert_eq!(seq.len(), expected);
        // Structural law: preorder prefixes form a valid tree walk — each
        // prefix is either empty (the root) or equal to some previous
        // element's prefix plus that element's own tag.
        let mut seen_paths: Vec<Vec<Symbol>> = vec![Vec::new()];
        for e in seq.iter() {
            let p = e.prefix.as_concrete().expect("data prefixes concrete");
            prop_assert!(seen_paths.contains(&p), "prefix {:?} has no origin", p);
            if let Sym::Tag(t) = e.sym {
                let mut mine = p.clone();
                mine.push(t);
                seen_paths.push(mine);
            }
        }
    }
}

fn doc_strategy() -> impl Strategy<Value = Document> {
    let names = ["a", "b", "c"];
    let leaf = (0usize..3, proptest::option::of("[a-z]{0,4}")).prop_map(move |(n, t)| {
        let mut e = ElementBuilder::new(names[n]);
        if let Some(t) = t {
            e = e.text(t);
        }
        e
    });
    leaf.prop_recursive(3, 24, 4, move |inner| {
        (
            0usize..3,
            proptest::collection::vec(inner, 0..4),
            proptest::collection::vec(("[a-z]{1,3}", "[a-z]{0,3}"), 0..2),
        )
            .prop_map(move |(n, children, attrs)| {
                let mut e = ElementBuilder::new(names[n]).children(children);
                let mut seen = std::collections::HashSet::new();
                for (an, av) in attrs {
                    if seen.insert(an.clone()) {
                        e = e.attr(an, av);
                    }
                }
                e
            })
    })
    .prop_map(ElementBuilder::into_document)
}
