//! Randomized tests for the sequence layer: key-order laws, prefix-matching
//! laws, and conversion invariants. Driven by a seeded splitmix64 generator
//! so runs are deterministic.

use vist_seq::{
    dkey, document_to_sequence, PathSym, Prefix, SiblingOrder, Sym, Symbol, SymbolTable,
};
use vist_xml::{Document, ElementBuilder};

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn random_sym(rng: &mut Rng) -> Sym {
    if rng.below(2) == 0 {
        Sym::Tag(Symbol(rng.below(50) as u32))
    } else {
        Sym::Value(rng.next())
    }
}

fn random_prefix(rng: &mut Rng) -> Vec<Symbol> {
    let len = rng.below(6);
    (0..len).map(|_| Symbol(rng.below(20) as u32)).collect()
}

/// The D-Ancestor key encoding must order by (symbol, prefix length,
/// prefix content) — the exact ordering the paper requires for wildcard
/// range queries.
#[test]
fn dkey_order_law() {
    for case in 0..512u64 {
        let mut rng = Rng(0xD0E1 ^ (case << 6));
        let a_sym = random_sym(&mut rng);
        let a_pre = random_prefix(&mut rng);
        let b_sym = random_sym(&mut rng);
        let b_pre = random_prefix(&mut rng);
        let ka = dkey::encode(a_sym, &a_pre);
        let kb = dkey::encode(b_sym, &b_pre);
        let logical = (a_sym.encode(), a_pre.len(), a_pre.clone()).cmp(&(
            b_sym.encode(),
            b_pre.len(),
            b_pre.clone(),
        ));
        assert_eq!(ka.cmp(&kb), logical);
        // And decoding inverts encoding.
        assert_eq!(dkey::decode(&ka), (a_sym, a_pre));
    }
}

/// `*` consumes exactly one symbol: a pattern with k stars and t tags
/// (no `//`) matches only prefixes of length k + t.
#[test]
fn star_pattern_length_law() {
    for case in 0..512u64 {
        let mut rng = Rng(0x57A2 ^ (case << 6));
        let steps: Vec<PathSym> = (0..rng.below(6))
            .map(|_| {
                if rng.below(2) == 0 {
                    PathSym::Tag(Symbol(rng.below(5) as u32))
                } else {
                    PathSym::Star
                }
            })
            .collect();
        let data = random_prefix(&mut rng);
        let pat = Prefix(steps.clone());
        if pat.matches(&data) {
            assert_eq!(steps.len(), data.len());
        }
    }
}

/// `//` is monotone: if a pattern with a `//` matches some data prefix,
/// inserting extra symbols at the `//` position still matches.
#[test]
fn dslash_monotonicity() {
    for case in 0..512u64 {
        let mut rng = Rng(0xD51A ^ (case << 6));
        let head: Vec<Symbol> = (0..rng.below(3))
            .map(|_| Symbol(rng.below(5) as u32))
            .collect();
        let tail: Vec<Symbol> = (0..rng.below(3))
            .map(|_| Symbol(rng.below(5) as u32))
            .collect();
        let insert = Symbol(rng.below(5) as u32);

        let mut steps: Vec<PathSym> = head.iter().map(|&s| PathSym::Tag(s)).collect();
        steps.push(PathSym::DoubleSlash);
        steps.extend(tail.iter().map(|&s| PathSym::Tag(s)));
        let pat = Prefix(steps);

        let data: Vec<Symbol> = head.iter().chain(tail.iter()).copied().collect();
        assert!(pat.matches(&data), "zero-width // must match");
        let mut widened = head.clone();
        widened.push(insert);
        widened.extend(tail.iter().copied());
        assert!(pat.matches(&widened), "one inserted symbol must match");
    }
}

fn random_word(rng: &mut Rng, min: usize, max: usize) -> String {
    let len = min + rng.below(max - min + 1);
    (0..len)
        .map(|_| (b'a' + rng.below(26) as u8) as char)
        .collect()
}

fn random_doc(rng: &mut Rng, depth: usize) -> ElementBuilder {
    const NAMES: [&str; 3] = ["a", "b", "c"];
    let mut e = ElementBuilder::new(NAMES[rng.below(3)]);
    if depth == 0 {
        if rng.below(2) == 0 {
            e = e.text(random_word(rng, 0, 4));
        }
        return e;
    }
    let kids: Vec<ElementBuilder> = (0..rng.below(4))
        .map(|_| random_doc(rng, depth - 1))
        .collect();
    e = e.children(kids);
    let mut seen = std::collections::HashSet::new();
    for _ in 0..rng.below(2) {
        let an = random_word(rng, 1, 3);
        if seen.insert(an.clone()) {
            let av = random_word(rng, 0, 3);
            e = e.attr(an, av);
        }
    }
    e
}

/// Document → sequence: element count preserved, prefixes nest (each
/// element's prefix extends some earlier element's prefix by exactly its
/// symbol), and the symbol kinds match the node kinds.
#[test]
fn conversion_invariants() {
    for case in 0..256u64 {
        let mut rng = Rng(0xC0F1 ^ (case << 6));
        let depth = rng.below(4);
        let doc: Document = random_doc(&mut rng, depth).into_document();
        let mut table = SymbolTable::new();
        let seq = document_to_sequence(&doc, &mut table, &SiblingOrder::Lexicographic);
        // Count: every element + attribute (+ its value) + non-ws text.
        let mut expected = 0usize;
        for id in doc.preorder() {
            if doc.is_element(id) {
                expected += 1 + 2 * doc.attributes(id).len();
            } else if !doc.text(id).unwrap_or("").trim().is_empty() {
                expected += 1;
            }
        }
        assert_eq!(seq.len(), expected);
        // Structural law: preorder prefixes form a valid tree walk — each
        // prefix is either empty (the root) or equal to some previous
        // element's prefix plus that element's own tag.
        let mut seen_paths: Vec<Vec<Symbol>> = vec![Vec::new()];
        for e in seq.iter() {
            let p = e.prefix.as_concrete().expect("data prefixes concrete");
            assert!(seen_paths.contains(&p), "prefix {p:?} has no origin");
            if let Sym::Tag(t) = e.sym {
                let mut mine = p.clone();
                mine.push(t);
                seen_paths.push(mine);
            }
        }
    }
}
