//! D-Ancestor B+Tree key encoding.
//!
//! The paper orders the D-Ancestor tree "first by the Symbol, then by the
//! length of the Prefix, and lastly by the content of the Prefix", so that a
//! `*` prefix (fixed length, unknown content) and a `//` prefix (unknown
//! length) both become contiguous *range queries*. The byte layout here
//! realizes exactly that ordering:
//!
//! ```text
//! [symbol bytes][prefix_len: u16 BE][prefix symbols: u32 BE each]
//! ```

use vist_btree::codec;

use crate::prefix::{PathSym, Prefix};
use crate::symbols::{Sym, Symbol};

/// Encode a concrete `(symbol, prefix)` pair as a D-Ancestor key.
#[must_use]
pub fn encode(sym: Sym, prefix: &[Symbol]) -> Vec<u8> {
    let mut out = sym.encode();
    out.extend_from_slice(&(prefix.len() as u16).to_be_bytes());
    for s in prefix {
        out.extend_from_slice(&s.0.to_be_bytes());
    }
    out
}

/// Decode a D-Ancestor key back into its `(symbol, prefix)` pair.
#[must_use]
pub fn decode(key: &[u8]) -> (Sym, Vec<Symbol>) {
    let (sym, used) = Sym::decode(key);
    let len = u16::from_be_bytes(key[used..used + 2].try_into().unwrap()) as usize;
    let mut prefix = Vec::with_capacity(len);
    let mut pos = used + 2;
    for _ in 0..len {
        prefix.push(Symbol(u32::from_be_bytes(
            key[pos..pos + 4].try_into().unwrap(),
        )));
        pos += 4;
    }
    (sym, prefix)
}

/// How to find the D-Ancestor entries matching a query element.
#[derive(Debug, Clone)]
pub enum DKeyQuery {
    /// Concrete prefix: a single exact key.
    Exact(Vec<u8>),
    /// Wildcarded prefix: scan `[lo, hi)` and keep keys whose decoded prefix
    /// matches `pattern`.
    Range {
        /// Inclusive lower bound.
        lo: Vec<u8>,
        /// Exclusive upper bound.
        hi: Vec<u8>,
        /// The wildcard pattern to filter decoded prefixes with.
        pattern: Prefix,
    },
}

/// Build the D-Ancestor lookup for a query element `(sym, prefix)`.
///
/// * no wildcards → [`DKeyQuery::Exact`];
/// * only `*` → the prefix length is fixed, so the range covers exactly one
///   `(symbol, length)` group;
/// * any `//` → the range covers all lengths ≥ the number of non-`//` steps
///   for this symbol.
#[must_use]
pub fn query_for(sym: Sym, prefix: &Prefix) -> DKeyQuery {
    if let Some(concrete) = prefix.as_concrete() {
        return DKeyQuery::Exact(encode(sym, &concrete));
    }
    let sym_bytes = sym.encode();
    if prefix.has_double_slash() {
        let min_len = prefix
            .0
            .iter()
            .filter(|s| !matches!(s, PathSym::DoubleSlash))
            .count() as u16;
        let mut lo = sym_bytes.clone();
        lo.extend_from_slice(&min_len.to_be_bytes());
        let hi =
            codec::prefix_upper_bound(&sym_bytes).expect("symbol encoding never ends in all-0xFF");
        DKeyQuery::Range {
            lo,
            hi,
            pattern: prefix.clone(),
        }
    } else {
        // Only '*': fixed length.
        let len = prefix.len() as u16;
        let mut lo = sym_bytes.clone();
        lo.extend_from_slice(&len.to_be_bytes());
        let mut hi = sym_bytes;
        hi.extend_from_slice(&(len + 1).to_be_bytes());
        DKeyQuery::Range {
            lo,
            hi,
            pattern: prefix.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::hash_value;

    fn syms(ids: &[u32]) -> Vec<Symbol> {
        ids.iter().map(|&i| Symbol(i)).collect()
    }

    #[test]
    fn encode_decode_roundtrip() {
        for (sym, prefix) in [
            (Sym::Tag(Symbol(3)), syms(&[])),
            (Sym::Tag(Symbol(0)), syms(&[1, 2, 3])),
            (Sym::Value(hash_value("boston")), syms(&[9, 8])),
        ] {
            let key = encode(sym, &prefix);
            assert_eq!(decode(&key), (sym, prefix));
        }
    }

    #[test]
    fn ordering_symbol_then_length_then_content() {
        // Same symbol: shorter prefixes sort first regardless of content.
        let short_big = encode(Sym::Tag(Symbol(1)), &syms(&[99]));
        let long_small = encode(Sym::Tag(Symbol(1)), &syms(&[0, 0]));
        assert!(short_big < long_small);
        // Same symbol + length: content order.
        let a = encode(Sym::Tag(Symbol(1)), &syms(&[2, 5]));
        let b = encode(Sym::Tag(Symbol(1)), &syms(&[2, 6]));
        assert!(a < b);
        // Different symbols dominate.
        let s1_long = encode(Sym::Tag(Symbol(1)), &syms(&[1, 2, 3, 4]));
        let s2_short = encode(Sym::Tag(Symbol(2)), &syms(&[]));
        assert!(s1_long < s2_short);
    }

    #[test]
    fn exact_query_for_concrete_prefix() {
        let p = Prefix(vec![PathSym::Tag(Symbol(1)), PathSym::Tag(Symbol(2))]);
        match query_for(Sym::Tag(Symbol(7)), &p) {
            DKeyQuery::Exact(k) => {
                assert_eq!(k, encode(Sym::Tag(Symbol(7)), &syms(&[1, 2])));
            }
            other => panic!("expected exact, got {other:?}"),
        }
    }

    #[test]
    fn star_query_covers_exactly_its_length_group() {
        // (L, P*): symbol L, prefix length 2.
        let l = Sym::Tag(Symbol(10));
        let p = Prefix(vec![PathSym::Tag(Symbol(1)), PathSym::Star]);
        let DKeyQuery::Range { lo, hi, pattern } = query_for(l, &p) else {
            panic!("expected range");
        };
        // Keys of length 2 with symbol L are inside.
        for content in [&[1u32, 0][..], &[1, 99], &[5, 5]] {
            let k = encode(l, &syms(content));
            assert!(k.as_slice() >= lo.as_slice() && k.as_slice() < hi.as_slice());
        }
        // Length 1 and 3 are outside.
        assert!(encode(l, &syms(&[1])).as_slice() < lo.as_slice());
        assert!(encode(l, &syms(&[1, 2, 3])).as_slice() >= hi.as_slice());
        // Another symbol is outside.
        assert!(encode(Sym::Tag(Symbol(11)), &syms(&[1, 2])).as_slice() >= hi.as_slice());
        // Filtering distinguishes matching content.
        assert!(pattern.matches(&syms(&[1, 7])));
        assert!(!pattern.matches(&syms(&[2, 7])));
    }

    #[test]
    fn double_slash_query_covers_all_longer_lengths() {
        // (I, P//): min length 1 (just P), any depth below.
        let i = Sym::Tag(Symbol(20));
        let p = Prefix(vec![PathSym::Tag(Symbol(1)), PathSym::DoubleSlash]);
        let DKeyQuery::Range { lo, hi, pattern } = query_for(i, &p) else {
            panic!("expected range");
        };
        for content in [&[1u32][..], &[1, 2], &[1, 2, 3, 4, 5]] {
            let k = encode(i, &syms(content));
            assert!(
                k.as_slice() >= lo.as_slice() && k.as_slice() < hi.as_slice(),
                "{content:?}"
            );
        }
        // Zero-length prefix (root) is below the range: '//' after P requires
        // at least P itself.
        assert!(encode(i, &[]).as_slice() < lo.as_slice());
        // Other symbols excluded.
        assert!(encode(Sym::Tag(Symbol(21)), &syms(&[1])).as_slice() >= hi.as_slice());
        assert!(pattern.matches(&syms(&[1, 9, 9])));
        assert!(!pattern.matches(&syms(&[2])));
    }

    #[test]
    fn value_symbol_keys_work_too() {
        let v = Sym::Value(hash_value("12/15/1999"));
        let p = Prefix(vec![PathSym::Tag(Symbol(1)), PathSym::Star]);
        assert!(matches!(query_for(v, &p), DKeyQuery::Range { .. }));
        let key = encode(v, &syms(&[1, 2]));
        let (sym, pre) = decode(&key);
        assert_eq!(sym, v);
        assert_eq!(pre, syms(&[1, 2]));
    }
}
