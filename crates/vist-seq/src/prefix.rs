//! Prefix paths, with wildcard placeholders and pattern matching.

use crate::symbols::{Symbol, SymbolTable};

/// One step of a prefix path. Data prefixes contain only `Tag`s; query
/// prefixes may contain the wildcard placeholders the paper leaves behind
/// when wildcard nodes are discarded ("the prefix paths of their sub nodes
/// will contain a `*` or `//` symbol as a place holder").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PathSym {
    /// A concrete element/attribute name.
    Tag(Symbol),
    /// `*`: matches exactly one path symbol.
    Star,
    /// `//`: matches any (possibly empty) run of path symbols.
    DoubleSlash,
}

/// A root-to-parent path of symbols.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Prefix(pub Vec<PathSym>);

impl Prefix {
    /// The empty prefix (the root element's prefix, `(P, ε)` in the paper).
    #[must_use]
    pub fn empty() -> Self {
        Prefix(Vec::new())
    }

    /// Number of path steps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` for the root prefix.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Append a step, returning the extended prefix.
    #[must_use]
    pub fn child(&self, step: PathSym) -> Prefix {
        let mut v = Vec::with_capacity(self.0.len() + 1);
        v.extend_from_slice(&self.0);
        v.push(step);
        Prefix(v)
    }

    /// `true` when the prefix contains any wildcard placeholder.
    #[must_use]
    pub fn has_wildcard(&self) -> bool {
        self.0
            .iter()
            .any(|s| matches!(s, PathSym::Star | PathSym::DoubleSlash))
    }

    /// `true` when the prefix contains a `//` placeholder (variable length).
    #[must_use]
    pub fn has_double_slash(&self) -> bool {
        self.0.iter().any(|s| matches!(s, PathSym::DoubleSlash))
    }

    /// Match this (possibly wildcarded) prefix pattern against a concrete
    /// data prefix: `*` consumes exactly one symbol, `//` consumes zero or
    /// more.
    #[must_use]
    pub fn matches(&self, data: &[Symbol]) -> bool {
        fn rec(pat: &[PathSym], data: &[Symbol]) -> bool {
            match pat.first() {
                None => data.is_empty(),
                Some(PathSym::Tag(t)) => data.first() == Some(t) && rec(&pat[1..], &data[1..]),
                Some(PathSym::Star) => !data.is_empty() && rec(&pat[1..], &data[1..]),
                Some(PathSym::DoubleSlash) => {
                    (0..=data.len()).any(|skip| rec(&pat[1..], &data[skip..]))
                }
            }
        }
        rec(&self.0, data)
    }

    /// View as concrete symbols; `None` if any wildcard is present.
    #[must_use]
    pub fn as_concrete(&self) -> Option<Vec<Symbol>> {
        self.0
            .iter()
            .map(|s| match s {
                PathSym::Tag(t) => Some(*t),
                _ => None,
            })
            .collect()
    }

    /// Render with a symbol table, e.g. `P/S/I` or `P/*/L`.
    #[must_use]
    pub fn display(&self, table: &SymbolTable) -> String {
        let parts: Vec<String> = self
            .0
            .iter()
            .map(|s| match s {
                PathSym::Tag(t) => table.name(*t).to_string(),
                PathSym::Star => "*".to_string(),
                PathSym::DoubleSlash => "//".to_string(),
            })
            .collect();
        parts.join("/")
    }

    /// Instantiate wildcards against a concrete data prefix that this pattern
    /// [`matches`](Prefix::matches): returns the data prefix (which is what a
    /// match binds the pattern to). Callers use this to replace a matched
    /// wildcard prefix with the concrete one, as in the paper: "the matching
    /// of `(L, P*)` will instantiate the `*` in `(v2, P*L)` to a concrete
    /// symbol".
    #[must_use]
    pub fn instantiate(&self, data: &[Symbol]) -> Option<Prefix> {
        if self.matches(data) {
            Some(Prefix(data.iter().map(|&s| PathSym::Tag(s)).collect()))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms(ids: &[u32]) -> Vec<Symbol> {
        ids.iter().map(|&i| Symbol(i)).collect()
    }

    fn pat(steps: &[i64]) -> Prefix {
        // -1 = Star, -2 = DoubleSlash, otherwise Tag(id)
        Prefix(
            steps
                .iter()
                .map(|&s| match s {
                    -1 => PathSym::Star,
                    -2 => PathSym::DoubleSlash,
                    id => PathSym::Tag(Symbol(id as u32)),
                })
                .collect(),
        )
    }

    #[test]
    fn concrete_match_is_equality() {
        assert!(pat(&[1, 2, 3]).matches(&syms(&[1, 2, 3])));
        assert!(!pat(&[1, 2, 3]).matches(&syms(&[1, 2])));
        assert!(!pat(&[1, 2, 3]).matches(&syms(&[1, 2, 4])));
        assert!(pat(&[]).matches(&syms(&[])));
        assert!(!pat(&[]).matches(&syms(&[1])));
    }

    #[test]
    fn star_matches_exactly_one() {
        // The paper's Q3: (L, P*) — P then any one symbol.
        let p = pat(&[1, -1]);
        assert!(p.matches(&syms(&[1, 2])));
        assert!(p.matches(&syms(&[1, 9])));
        assert!(!p.matches(&syms(&[1])));
        assert!(!p.matches(&syms(&[1, 2, 3])));
        assert!(!p.matches(&syms(&[2, 2])));
    }

    #[test]
    fn double_slash_matches_any_run_including_empty() {
        // The paper's Q4: (I, P//) — P then any descendant position.
        let p = pat(&[1, -2]);
        assert!(p.matches(&syms(&[1])), "// matches zero symbols (P/I)");
        assert!(p.matches(&syms(&[1, 5])));
        assert!(p.matches(&syms(&[1, 5, 6, 7])));
        assert!(!p.matches(&syms(&[2])));
        // // in the middle: (M, P//I)
        let p = pat(&[1, -2, 3]);
        assert!(p.matches(&syms(&[1, 3])));
        assert!(p.matches(&syms(&[1, 9, 3])));
        assert!(p.matches(&syms(&[1, 9, 8, 3])));
        assert!(!p.matches(&syms(&[1, 9, 8])));
    }

    #[test]
    fn combined_wildcards() {
        let p = pat(&[-2, 4, -1]);
        assert!(p.matches(&syms(&[4, 0])));
        assert!(p.matches(&syms(&[1, 2, 4, 9])));
        assert!(!p.matches(&syms(&[4])));
    }

    #[test]
    fn wildcard_flags() {
        assert!(!pat(&[1, 2]).has_wildcard());
        assert!(pat(&[1, -1]).has_wildcard());
        assert!(pat(&[1, -2]).has_double_slash());
        assert!(!pat(&[1, -1]).has_double_slash());
    }

    #[test]
    fn as_concrete_and_instantiate() {
        assert_eq!(pat(&[1, 2]).as_concrete(), Some(syms(&[1, 2])));
        assert_eq!(pat(&[1, -1]).as_concrete(), None);
        let inst = pat(&[1, -1]).instantiate(&syms(&[1, 7])).unwrap();
        assert_eq!(inst, pat(&[1, 7]));
        assert!(pat(&[1, -1]).instantiate(&syms(&[2, 7])).is_none());
    }

    #[test]
    fn display_renders_wildcards() {
        let mut t = SymbolTable::new();
        let p = t.intern("P");
        let prefix = Prefix(vec![PathSym::Tag(p), PathSym::Star, PathSym::DoubleSlash]);
        assert_eq!(prefix.display(&t), "P/*///");
    }
}
