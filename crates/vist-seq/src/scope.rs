//! Virtual-suffix-tree labels and scopes (paper §3.3–3.4).

/// The size of the root scope. The paper uses "8 bytes to label a virtual
/// suffix tree node (i.e. MAX = 2^256 − 1)" — the arithmetic there is a
/// typo; we use 16-byte (`u128`) labels with two bits of headroom, giving
/// the same practical behaviour: a root scope so large that top-down
/// geometric allocation rarely underflows.
pub const MAX_SCOPE: u128 = 1 << 126;

/// A static RIST label `⟨n, size⟩`: node id `n`, subtree occupying
/// `[n, n + size)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Scope {
    /// Preorder id of the node; also the start of its scope.
    pub n: u128,
    /// Width of the scope, including the node itself (`size >= 1`).
    pub size: u128,
}

impl Scope {
    /// The whole label space.
    #[must_use]
    pub fn root() -> Self {
        Scope {
            n: 0,
            size: MAX_SCOPE,
        }
    }

    /// Exclusive end of the scope.
    #[must_use]
    pub fn end(&self) -> u128 {
        self.n + self.size
    }

    /// S-Ancestorship test: is `other` inside this scope (a descendant)?
    ///
    /// The paper's Definition 3: `y` is a descendant of `x` iff
    /// `[n_y, n_y + size_y) ⊂ [n_x, n_x + size_x)`. Because allocation
    /// guarantees nesting, checking the start point suffices, which is what
    /// lets the S-Ancestor B+Tree answer this with the range query
    /// `n_x < n_y ≤ n_x + size_x`.
    #[must_use]
    pub fn contains(&self, other: &Scope) -> bool {
        other.n > self.n && other.end() <= self.end()
    }

    /// Does this scope contain the point `n` (excluding its own id)?
    #[must_use]
    pub fn contains_point(&self, n: u128) -> bool {
        n > self.n && n < self.end()
    }
}

/// A dynamic ViST scope `⟨n, size, k⟩` (Definition 3): the static label plus
/// the number of subscopes already allocated inside it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynamicScope {
    /// The node's label / scope.
    pub scope: Scope,
    /// Number of child subscopes handed out so far.
    pub k: u64,
}

impl DynamicScope {
    /// Fresh dynamic scope with no children allocated.
    #[must_use]
    pub fn new(n: u128, size: u128) -> Self {
        DynamicScope {
            scope: Scope { n, size },
            k: 0,
        }
    }

    /// The root of the virtual suffix tree.
    #[must_use]
    pub fn root() -> Self {
        DynamicScope {
            scope: Scope::root(),
            k: 0,
        }
    }
}

/// On-disk encoding of a dynamic scope's value part (size, k): the S-Ancestor
/// B+Tree keys on `n` and stores this as the value.
#[must_use]
pub fn encode_scope_value(scope: &DynamicScope) -> [u8; 24] {
    let mut out = [0u8; 24];
    out[..16].copy_from_slice(&scope.scope.size.to_le_bytes());
    out[16..].copy_from_slice(&scope.k.to_le_bytes());
    out
}

/// Inverse of [`encode_scope_value`], given the key `n`.
#[must_use]
pub fn decode_scope_value(n: u128, value: &[u8]) -> DynamicScope {
    let size = u128::from_le_bytes(value[..16].try_into().expect("scope value size"));
    let k = u64::from_le_bytes(value[16..24].try_into().expect("scope value k"));
    DynamicScope {
        scope: Scope { n, size },
        k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn containment_matches_definition() {
        let outer = Scope { n: 10, size: 100 };
        assert!(outer.contains(&Scope { n: 11, size: 99 }));
        assert!(outer.contains(&Scope { n: 50, size: 10 }));
        assert!(!outer.contains(&Scope { n: 10, size: 100 }), "not self");
        assert!(!outer.contains(&Scope { n: 9, size: 5 }));
        assert!(!outer.contains(&Scope { n: 50, size: 100 }), "overhang");
        assert!(outer.contains_point(11));
        assert!(outer.contains_point(109));
        assert!(!outer.contains_point(10));
        assert!(!outer.contains_point(110));
    }

    #[test]
    fn root_scope_is_huge() {
        let r = Scope::root();
        assert_eq!(r.n, 0);
        assert!(r.size > 1 << 100);
    }

    #[test]
    fn scope_value_roundtrip() {
        let ds = DynamicScope {
            scope: Scope {
                n: 12345,
                size: 1 << 90,
            },
            k: 7,
        };
        let enc = encode_scope_value(&ds);
        let dec = decode_scope_value(12345, &enc);
        assert_eq!(dec, ds);
    }
}
