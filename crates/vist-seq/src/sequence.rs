//! Document → structure-encoded sequence conversion (paper Definition 1).

use vist_xml::{Document, NodeId};

use crate::prefix::{PathSym, Prefix};
use crate::symbols::{hash_value, Interner, Sym, SymbolTable};

/// One `(symbol, prefix)` pair of a structure-encoded sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqElem {
    /// The node's symbol (tag or hashed value).
    pub sym: Sym,
    /// Root-to-parent path. Concrete for data; may hold wildcards in queries.
    pub prefix: Prefix,
}

/// A structure-encoded sequence: the preorder sequence of `(symbol, prefix)`
/// pairs of an XML record tree.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Sequence(pub Vec<SeqElem>);

impl Sequence {
    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` when the sequence has no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterate over the elements.
    pub fn iter(&self) -> std::slice::Iter<'_, SeqElem> {
        self.0.iter()
    }

    /// Render like the paper's Figure 4, e.g. `(P,)(S,P)(N,P/S)...`.
    #[must_use]
    pub fn display(&self, table: &SymbolTable) -> String {
        let mut out = String::new();
        for e in &self.0 {
            let sym = match e.sym {
                Sym::Tag(t) => table.name(t).to_string(),
                Sym::Value(v) => format!("v{:04x}", v & 0xFFFF),
            };
            out.push_str(&format!("({},{})", sym, e.prefix.display(table)));
        }
        out
    }
}

impl<'a> IntoIterator for &'a Sequence {
    type Item = &'a SeqElem;
    type IntoIter = std::slice::Iter<'a, SeqElem>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

/// How sibling nodes are ordered during conversion.
///
/// Isomorphic trees must produce identical preorder sequences, so the paper
/// enforces an order among siblings: "The DTD schema embodies a linear order
/// of all elements/attributes defined therein. If the DTD is not available,
/// we simply use the lexicographical order of the names." Value (text) nodes
/// always come first under their parent; same-name siblings keep document
/// order ("we order them arbitrarily" — but deterministically).
#[derive(Debug, Clone, Default)]
pub enum SiblingOrder {
    /// Lexicographic order of element/attribute names (the DTD-less default).
    #[default]
    Lexicographic,
    /// The DTD's linear element order: rank = position in this list; names
    /// missing from the list sort after listed ones, lexicographically.
    Dtd(Vec<String>),
}

impl SiblingOrder {
    /// Build the DTD ordering from DTD text (paper Figure 1 style): parse
    /// the `<!ELEMENT>`/`<!ATTLIST>` declarations and use their linear
    /// declaration order.
    pub fn from_dtd(dtd_text: &str) -> Result<Self, vist_xml::ParseError> {
        Ok(SiblingOrder::Dtd(
            vist_xml::parse_dtd(dtd_text)?.sibling_order(),
        ))
    }

    /// Sort rank for a name: lower ranks sort first.
    #[must_use]
    pub fn rank<'a>(&self, name: &'a str) -> (usize, &'a str) {
        match self {
            SiblingOrder::Lexicographic => (0, name),
            SiblingOrder::Dtd(order) => order
                .iter()
                .position(|n| n == name)
                .map_or((order.len(), name), |i| (i, "")),
        }
    }
}

/// The record tree: the XML document with attributes lowered to child nodes
/// and text/attribute values lowered to hashed leaf values — exactly the
/// tree of the paper's Figure 3. Both the sequence conversion and the exact
/// tree-pattern matcher (`vist-query`) operate on this shared form, so they
/// agree on attribute lowering, value hashing, and sibling ordering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordNode {
    /// Tag or hashed-value symbol.
    pub sym: Sym,
    /// Name used for sibling ordering (empty for values).
    pub name: String,
    /// Ordered children (values first, then tags per the sibling order).
    pub children: Vec<RecordNode>,
}

/// Lower an XML document into its record tree (see [`RecordNode`]).
/// Returns `None` for a document without a root element.
pub fn document_to_record_tree(
    doc: &Document,
    table: &mut SymbolTable,
    order: &SiblingOrder,
) -> Option<RecordNode> {
    document_to_record_tree_with(doc, table, order)
}

/// [`document_to_record_tree`] generic over the interner, so callers can
/// encode against a [`crate::TableOverlay`] without mutating the shared
/// table (see [`Interner`]).
pub fn document_to_record_tree_with<I: Interner>(
    doc: &Document,
    table: &mut I,
    order: &SiblingOrder,
) -> Option<RecordNode> {
    doc.root().map(|root| build_rnode(doc, root, table, order))
}

fn build_rnode<I: Interner>(
    doc: &Document,
    id: NodeId,
    table: &mut I,
    order: &SiblingOrder,
) -> RecordNode {
    let name = doc.name(id).to_string();
    let sym = Sym::Tag(table.intern(&name));
    let mut children: Vec<RecordNode> = Vec::new();
    // Attribute nodes, each with a hashed-value leaf child.
    for attr in doc.attributes(id) {
        children.push(RecordNode {
            sym: Sym::Tag(table.intern(&attr.name)),
            name: attr.name.clone(),
            children: vec![RecordNode {
                sym: Sym::Value(hash_value(&attr.value)),
                name: String::new(),
                children: Vec::new(),
            }],
        });
    }
    // Text children become value leaves; element children recurse.
    for &c in doc.children(id) {
        if let Some(t) = doc.text(c) {
            if !t.trim().is_empty() {
                children.push(RecordNode {
                    sym: Sym::Value(hash_value(t)),
                    name: String::new(),
                    children: Vec::new(),
                });
            }
        } else {
            children.push(build_rnode(doc, c, table, order));
        }
    }
    sort_siblings(&mut children, order);
    RecordNode {
        sym,
        name,
        children,
    }
}

/// Stable sort: values first, then tags by the configured order. Stability
/// keeps same-name siblings in document order.
pub fn sort_siblings(children: &mut [RecordNode], order: &SiblingOrder) {
    children.sort_by(|a, b| {
        let ka = sort_key(a, order);
        let kb = sort_key(b, order);
        ka.cmp(&kb)
    });
}

fn sort_key<'a>(n: &'a RecordNode, order: &SiblingOrder) -> (u8, usize, &'a str) {
    match n.sym {
        Sym::Value(_) => (0, 0, ""),
        Sym::Tag(_) => {
            let (rank, name) = order.rank(&n.name);
            (1, rank, name)
        }
    }
}

fn emit(node: &RecordNode, prefix: &Prefix, out: &mut Vec<SeqElem>) {
    out.push(SeqElem {
        sym: node.sym,
        prefix: prefix.clone(),
    });
    if node.children.is_empty() {
        return;
    }
    let child_prefix = match node.sym {
        Sym::Tag(t) => prefix.child(PathSym::Tag(t)),
        Sym::Value(_) => unreachable!("value nodes are leaves"),
    };
    for c in &node.children {
        emit(c, &child_prefix, out);
    }
}

/// Convert an XML document into its structure-encoded sequence.
///
/// Interns names into `table` (shared with the index the sequence feeds).
/// Returns an empty sequence for a document without a root.
pub fn document_to_sequence(
    doc: &Document,
    table: &mut SymbolTable,
    order: &SiblingOrder,
) -> Sequence {
    document_to_sequence_with(doc, table, order)
}

/// [`document_to_sequence`] generic over the interner (see [`Interner`]):
/// batch ingest encodes each document against a private [`crate::TableOverlay`]
/// on a worker thread, then remaps overlay ids once the shared table's write
/// lock is held.
pub fn document_to_sequence_with<I: Interner>(
    doc: &Document,
    table: &mut I,
    order: &SiblingOrder,
) -> Sequence {
    let Some(tree) = document_to_record_tree_with(doc, table, order) else {
        return Sequence::default();
    };
    Sequence(record_tree_to_elems(&tree, doc.node_count()))
}

/// Flatten a record tree into its `(symbol, prefix)` preorder elements.
#[must_use]
pub fn record_tree_to_elems(tree: &RecordNode, capacity_hint: usize) -> Vec<SeqElem> {
    let mut out = Vec::with_capacity(capacity_hint);
    emit(tree, &Prefix::empty(), &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vist_xml::parse;

    /// The paper's running example (Figure 3): a purchase record. Element
    /// names shortened to the paper's single letters so the expected
    /// sequence is readable.
    fn purchase_record() -> Document {
        // P = Purchase, S = Seller, B = Buyer, I = Item, L = Location,
        // N = Name, M = Manufacturer. Values v1.. are the attr/text values.
        parse(concat!(
            r#"<P>"#,
            r#"<S>"#,
            r#"<N>dell</N>"#,
            r#"<I><M>ibm</M><N>part1</N><I><M>panasia</M></I></I>"#,
            r#"<I><N>part2</N></I>"#,
            r#"<L>boston</L>"#,
            r#"</S>"#,
            r#"<B><L>newyork</L><N>intel</N></B>"#,
            r#"</P>"#
        ))
        .unwrap()
    }

    #[test]
    fn figure4_structure_encoded_sequence() {
        let doc = purchase_record();
        let mut table = SymbolTable::new();
        let seq = document_to_sequence(&doc, &mut table, &SiblingOrder::Lexicographic);
        // Render symbol-kind skeleton: element names and 'v' for values.
        let skeleton: Vec<String> = seq
            .iter()
            .map(|e| match e.sym {
                Sym::Tag(t) => table.name(t).to_string(),
                Sym::Value(_) => "v".to_string(),
            })
            .collect();
        // Lexicographic sibling order: B < S under P; under S: I, I, L, N;
        // under I1: sub-I < M < N; values always first under their parent.
        // Preorder: P B(Lv Nv) S(I1(I(Mv) Mv Nv) I2(Nv) Lv Nv)
        assert_eq!(skeleton.join(""), "PBLvNvSIIMvMvNvINvLvNv");
        // Prefix of every element is the path to its parent.
        assert_eq!(seq.0[1].prefix.len(), 1); // (B, P)
        let deepest = seq.iter().map(|e| e.prefix.len()).max().unwrap();
        assert_eq!(deepest, 5, "value under P/S/I/I/M");
    }

    #[test]
    fn prefixes_trace_ancestry() {
        let doc = parse("<a><b><c>x</c></b></a>").unwrap();
        let mut table = SymbolTable::new();
        let seq = document_to_sequence(&doc, &mut table, &SiblingOrder::Lexicographic);
        let a = table.lookup("a").unwrap();
        let b = table.lookup("b").unwrap();
        let c = table.lookup("c").unwrap();
        assert_eq!(seq.len(), 4);
        assert_eq!(seq.0[0].prefix, Prefix::empty());
        assert_eq!(seq.0[1].prefix.0, vec![PathSym::Tag(a)]);
        assert_eq!(seq.0[2].prefix.0, vec![PathSym::Tag(a), PathSym::Tag(b)]);
        assert_eq!(
            seq.0[3].prefix.0,
            vec![PathSym::Tag(a), PathSym::Tag(b), PathSym::Tag(c)]
        );
        assert_eq!(seq.0[3].sym, Sym::Value(hash_value("x")));
    }

    #[test]
    fn attributes_become_child_nodes() {
        let doc = parse(r#"<item name="cpu" maker="intel"/>"#).unwrap();
        let mut table = SymbolTable::new();
        let seq = document_to_sequence(&doc, &mut table, &SiblingOrder::Lexicographic);
        // item, maker, v, name, v  (lexicographic: maker < name)
        assert_eq!(seq.len(), 5);
        let maker = table.lookup("maker").unwrap();
        let name = table.lookup("name").unwrap();
        assert_eq!(seq.0[1].sym, Sym::Tag(maker));
        assert_eq!(seq.0[2].sym, Sym::Value(hash_value("intel")));
        assert_eq!(seq.0[3].sym, Sym::Tag(name));
        assert_eq!(seq.0[4].sym, Sym::Value(hash_value("cpu")));
    }

    #[test]
    fn isomorphic_documents_produce_identical_sequences() {
        // Same tree, different sibling order in the source text.
        let d1 = parse("<r><a/><b/><c>t</c></r>").unwrap();
        let d2 = parse("<r><c>t</c><b/><a/></r>").unwrap();
        let mut t1 = SymbolTable::new();
        let mut t2 = SymbolTable::new();
        let s1 = document_to_sequence(&d1, &mut t1, &SiblingOrder::Lexicographic);
        let s2 = document_to_sequence(&d2, &mut t2, &SiblingOrder::Lexicographic);
        // Compare by display (symbol tables interned in different orders).
        assert_eq!(s1.display(&t1), s2.display(&t2));
    }

    #[test]
    fn dtd_order_overrides_lexicographic() {
        let doc = parse("<r><a/><z/></r>").unwrap();
        let order = SiblingOrder::Dtd(vec!["r".into(), "z".into(), "a".into()]);
        let mut table = SymbolTable::new();
        let seq = document_to_sequence(&doc, &mut table, &order);
        let names: Vec<&str> = seq
            .iter()
            .map(|e| match e.sym {
                Sym::Tag(t) => table.name(t),
                Sym::Value(_) => "v",
            })
            .collect();
        assert_eq!(names, vec!["r", "z", "a"]);
    }

    #[test]
    fn same_name_siblings_keep_document_order() {
        let doc = parse("<r><i>1</i><i>2</i></r>").unwrap();
        let mut table = SymbolTable::new();
        let seq = document_to_sequence(&doc, &mut table, &SiblingOrder::Lexicographic);
        assert_eq!(seq.0[2].sym, Sym::Value(hash_value("1")));
        assert_eq!(seq.0[4].sym, Sym::Value(hash_value("2")));
    }

    #[test]
    fn empty_document_gives_empty_sequence() {
        let doc = Document::new();
        let mut table = SymbolTable::new();
        let seq = document_to_sequence(&doc, &mut table, &SiblingOrder::Lexicographic);
        assert!(seq.is_empty());
    }

    #[test]
    fn display_shows_pairs() {
        let doc = parse("<a><b/></a>").unwrap();
        let mut table = SymbolTable::new();
        let seq = document_to_sequence(&doc, &mut table, &SiblingOrder::Lexicographic);
        assert_eq!(seq.display(&table), "(a,)(b,a)");
    }
}
