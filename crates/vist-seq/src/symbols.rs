//! Symbol interning and value hashing.

use std::collections::HashMap;
use std::fmt;

/// An interned element/attribute name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

/// A symbol occurring in a structure-encoded sequence.
///
/// Data sequences contain only `Tag` and `Value`; query sequences may also
/// contain the wildcard placeholders (after translation the wildcards live
/// in *prefixes*, but the variants are shared).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sym {
    /// An element or attribute name.
    Tag(Symbol),
    /// A hashed attribute value or text value (`h(text)`, as in the paper).
    Value(u64),
}

impl Sym {
    /// Byte encoding used inside B+Tree keys. `Tag` sorts before `Value`;
    /// within a kind, order follows the id / hash.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Sym::Tag(Symbol(id)) => {
                let mut v = Vec::with_capacity(5);
                v.push(0x01);
                v.extend_from_slice(&id.to_be_bytes());
                v
            }
            Sym::Value(h) => {
                let mut v = Vec::with_capacity(9);
                v.push(0x02);
                v.extend_from_slice(&h.to_be_bytes());
                v
            }
        }
    }

    /// Decode from the front of `buf`, returning the symbol and the number of
    /// bytes consumed.
    #[must_use]
    pub fn decode(buf: &[u8]) -> (Sym, usize) {
        match buf[0] {
            0x01 => (
                Sym::Tag(Symbol(u32::from_be_bytes(buf[1..5].try_into().unwrap()))),
                5,
            ),
            0x02 => (
                Sym::Value(u64::from_be_bytes(buf[1..9].try_into().unwrap())),
                9,
            ),
            other => panic!("corrupt symbol tag byte {other}"),
        }
    }
}

/// Hash a text value into the value-symbol space (the paper's `h()`).
///
/// FNV-1a over the trimmed text. Deterministic across runs and platforms.
/// Collisions map distinct texts to one symbol — a (rare) source of false
/// positives the paper's design accepts; the exact-verification mode in
/// `vist-query` removes them.
#[must_use]
pub fn hash_value(text: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in text.trim().bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Bidirectional map between names and [`Symbol`]s.
///
/// One table is shared by an index and every query against it; symbol ids are
/// dense and allocation order is insertion order.
#[derive(Debug, Default, Clone)]
pub struct SymbolTable {
    names: Vec<String>,
    map: HashMap<String, Symbol>,
}

impl SymbolTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        SymbolTable::default()
    }

    /// Intern `name`, returning its symbol (allocating one if new).
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&s) = self.map.get(name) {
            return s;
        }
        let s = Symbol(u32::try_from(self.names.len()).expect("symbol space exhausted"));
        self.names.push(name.to_string());
        self.map.insert(name.to_string(), s);
        s
    }

    /// Look up an existing symbol without allocating.
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<Symbol> {
        self.map.get(name).copied()
    }

    /// The name behind a symbol.
    #[must_use]
    pub fn name(&self, sym: Symbol) -> &str {
        &self.names[sym.0 as usize]
    }

    /// Number of interned names.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when no names are interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Serialize to bytes (length-prefixed names in id order) so an on-disk
    /// index can persist its table.
    #[must_use]
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.names.len() as u32).to_le_bytes());
        for n in &self.names {
            out.extend_from_slice(&(n.len() as u32).to_le_bytes());
            out.extend_from_slice(n.as_bytes());
        }
        out
    }

    /// Inverse of [`SymbolTable::serialize`].
    #[must_use]
    pub fn deserialize(buf: &[u8]) -> Option<Self> {
        let mut table = SymbolTable::new();
        let count = u32::from_le_bytes(buf.get(0..4)?.try_into().ok()?) as usize;
        let mut pos = 4;
        for _ in 0..count {
            let len = u32::from_le_bytes(buf.get(pos..pos + 4)?.try_into().ok()?) as usize;
            pos += 4;
            let name = std::str::from_utf8(buf.get(pos..pos + len)?).ok()?;
            pos += len;
            table.intern(name);
        }
        Some(table)
    }
}

/// Anything that can intern a name into a [`Symbol`].
///
/// Document encoding only needs `intern`, so making the conversion generic
/// over this trait lets a batch-ingest worker encode against a
/// [`TableOverlay`] (a read-only snapshot of the shared table plus private
/// scratch ids) instead of holding the shared table's write lock.
pub trait Interner {
    /// Intern `name`, returning its symbol (allocating one if new).
    fn intern(&mut self, name: &str) -> Symbol;
}

impl Interner for SymbolTable {
    fn intern(&mut self, name: &str) -> Symbol {
        SymbolTable::intern(self, name)
    }
}

impl Interner for TableOverlay<'_> {
    fn intern(&mut self, name: &str) -> Symbol {
        TableOverlay::intern(self, name)
    }
}

/// An ephemeral overlay on a borrowed [`SymbolTable`].
///
/// Query translation needs to *intern* names so it can render and compare
/// them, but query-only names must never leak into the shared data table —
/// and cloning the whole table per query is wasteful. The overlay resolves
/// against the base table first and allocates any unknown name an id past
/// the base's range, so overlay symbols can never collide with (or match)
/// a data symbol. Dropped when the query is done.
#[derive(Debug)]
pub struct TableOverlay<'a> {
    base: &'a SymbolTable,
    names: Vec<String>,
    map: HashMap<String, Symbol>,
}

impl<'a> TableOverlay<'a> {
    /// An empty overlay over `base`.
    #[must_use]
    pub fn new(base: &'a SymbolTable) -> Self {
        TableOverlay {
            base,
            names: Vec::new(),
            map: HashMap::new(),
        }
    }

    /// The symbol for `name`: the base table's if present, else an overlay
    /// symbol (allocating one if new).
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(s) = self.base.lookup(name) {
            return s;
        }
        if let Some(&s) = self.map.get(name) {
            return s;
        }
        let id = self.base.len() + self.names.len();
        let s = Symbol(u32::try_from(id).expect("symbol space exhausted"));
        self.names.push(name.to_string());
        self.map.insert(name.to_string(), s);
        s
    }

    /// The name behind a symbol, whether it lives in the base table or the
    /// overlay.
    #[must_use]
    pub fn name(&self, sym: Symbol) -> &str {
        let i = sym.0 as usize;
        if i < self.base.len() {
            self.base.name(sym)
        } else {
            &self.names[i - self.base.len()]
        }
    }

    /// `true` when `sym` was allocated by this overlay (i.e. the name is
    /// unknown to the data).
    #[must_use]
    pub fn is_overlay(&self, sym: Symbol) -> bool {
        (sym.0 as usize) >= self.base.len()
    }

    /// Number of overlay-only names.
    #[must_use]
    pub fn overlay_len(&self) -> usize {
        self.names.len()
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sym::Tag(Symbol(id)) => write!(f, "t{id}"),
            Sym::Value(h) => write!(f, "v{:x}", h & 0xFFFF),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("purchase");
        let b = t.intern("seller");
        assert_ne!(a, b);
        assert_eq!(t.intern("purchase"), a);
        assert_eq!(t.name(a), "purchase");
        assert_eq!(t.lookup("seller"), Some(b));
        assert_eq!(t.lookup("buyer"), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn sym_encode_decode_roundtrip() {
        for sym in [
            Sym::Tag(Symbol(0)),
            Sym::Tag(Symbol(u32::MAX)),
            Sym::Value(0),
            Sym::Value(hash_value("dell")),
        ] {
            let enc = sym.encode();
            let (dec, used) = Sym::decode(&enc);
            assert_eq!(dec, sym);
            assert_eq!(used, enc.len());
        }
    }

    #[test]
    fn tags_sort_before_values_and_by_id() {
        assert!(Sym::Tag(Symbol(5)).encode() < Sym::Value(0).encode());
        assert!(Sym::Tag(Symbol(1)).encode() < Sym::Tag(Symbol(2)).encode());
        assert!(Sym::Value(10).encode() < Sym::Value(11).encode());
    }

    #[test]
    fn hash_value_trims_and_is_stable() {
        assert_eq!(hash_value("dell"), hash_value("  dell \n"));
        assert_ne!(hash_value("dell"), hash_value("ibm"));
        // Pinned value: the on-disk format depends on this function.
        assert_eq!(hash_value(""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn overlay_resolves_base_first_and_never_mutates_it() {
        let mut base = SymbolTable::new();
        let a = base.intern("a");
        let b = base.intern("b");
        let before = base.len();
        let mut ov = TableOverlay::new(&base);
        assert_eq!(ov.intern("a"), a);
        assert!(!ov.is_overlay(a));
        let q = ov.intern("query_only");
        assert!(ov.is_overlay(q));
        assert_eq!(q.0 as usize, before, "overlay ids start past the base");
        assert_eq!(ov.intern("query_only"), q, "overlay interning idempotent");
        assert_eq!(ov.name(q), "query_only");
        assert_eq!(ov.name(b), "b");
        assert_eq!(ov.overlay_len(), 1);
        assert_eq!(base.len(), before, "base untouched");
        assert_eq!(base.lookup("query_only"), None);
    }

    #[test]
    fn table_serialization_roundtrip() {
        let mut t = SymbolTable::new();
        for n in ["purchase", "seller", "item", "名前"] {
            t.intern(n);
        }
        let bytes = t.serialize();
        let t2 = SymbolTable::deserialize(&bytes).unwrap();
        assert_eq!(t2.len(), 4);
        for n in ["purchase", "seller", "item", "名前"] {
            assert_eq!(t2.lookup(n), t.lookup(n), "{n}");
        }
        assert!(SymbolTable::deserialize(&bytes[..bytes.len() - 1]).is_none());
    }
}
