//! Structure-encoded sequences — ViST's representation of XML data and
//! queries (Section 2 of the paper).
//!
//! A structure-encoded sequence is the preorder sequence of
//! `(symbol, prefix)` pairs of an XML document tree, where attribute names
//! are child nodes, and attribute values / element text are hashed leaf
//! "value" symbols (`v1 = h("dell")` in the paper). Querying XML then
//! reduces to *non-contiguous subsequence matching* over these sequences.
//!
//! This crate defines the shared vocabulary of the whole workspace:
//!
//! * [`SymbolTable`] / [`Sym`] — interned element/attribute names plus hashed
//!   values and the `*` / `//` wildcard placeholders,
//! * [`Prefix`] — a root-to-parent path, with wildcard matching for query
//!   prefixes,
//! * [`SeqElem`] / [`Sequence`] — the `(symbol, prefix)` sequence and the
//!   document → sequence conversion with deterministic sibling ordering,
//! * [`Scope`] / [`DynamicScope`] — virtual-suffix-tree labels (Definitions
//!   2–3), and
//! * [`dkey`] — the on-disk D-Ancestor key encoding, ordered exactly as the
//!   paper requires ("first by the Symbol, then by the length of the Prefix,
//!   and lastly by the content of the Prefix") so wildcard prefixes become
//!   B+Tree range queries.

mod prefix;
mod scope;
mod sequence;
mod symbols;

pub mod dkey;

pub use prefix::{PathSym, Prefix};
pub use scope::{decode_scope_value, encode_scope_value, DynamicScope, Scope, MAX_SCOPE};
pub use sequence::{
    document_to_record_tree, document_to_record_tree_with, document_to_sequence,
    document_to_sequence_with, record_tree_to_elems, sort_siblings, RecordNode, SeqElem, Sequence,
    SiblingOrder,
};
pub use symbols::{hash_value, Interner, Sym, Symbol, SymbolTable, TableOverlay};
