//! Rendering queries back to path-expression text.
//!
//! `parse_query(q).to_pattern().to_expr()` produces an equivalent
//! expression (used for logging, the CLI, and round-trip tests). Branch
//! children render as predicates; the last child of a chain renders as the
//! continuation path, matching the surface syntax's shape.

use std::fmt;

use crate::ast::{Axis, Pattern, PatternNode, PatternTest};

impl Pattern {
    /// Render as a path expression equivalent to this pattern.
    #[must_use]
    pub fn to_expr(&self) -> String {
        let mut out = String::new();
        render(&self.root, &mut out);
        out
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_expr())
    }
}

fn render(node: &PatternNode, out: &mut String) {
    out.push_str(match node.axis {
        Axis::Child => "/",
        Axis::Descendant => "//",
    });
    match &node.test {
        PatternTest::Tag(name) => out.push_str(name),
        PatternTest::Star => out.push('*'),
        PatternTest::Value(_) => unreachable!("values render inside predicates"),
    }
    // All children render as predicates except a single trailing element
    // chain, which renders as the continuation path.
    let (branches, continuation) = split_children(node);
    for b in branches {
        out.push('[');
        render_predicate(b, out);
        out.push(']');
    }
    if let Some(cont) = continuation {
        render(cont, out);
    }
}

/// Choose the continuation: the last non-value child, if any.
fn split_children(node: &PatternNode) -> (Vec<&PatternNode>, Option<&PatternNode>) {
    let cont_idx = node
        .children
        .iter()
        .rposition(|c| !matches!(c.test, PatternTest::Value(_)));
    let mut branches = Vec::new();
    for (i, c) in node.children.iter().enumerate() {
        if Some(i) != cont_idx {
            branches.push(c);
        }
    }
    (branches, cont_idx.map(|i| &node.children[i]))
}

fn render_predicate(node: &PatternNode, out: &mut String) {
    match &node.test {
        PatternTest::Value(lit) => {
            out.push_str("text='");
            out.push_str(lit);
            out.push('\'');
        }
        _ => {
            // Relative path: render like an absolute one, then strip the
            // leading '/' (predicates use child-relative steps).
            let mut inner = String::new();
            render_relative(node, &mut inner);
            out.push_str(&inner);
        }
    }
}

fn render_relative(node: &PatternNode, out: &mut String) {
    if node.axis == Axis::Descendant {
        out.push_str("//");
    }
    match &node.test {
        PatternTest::Tag(name) => out.push_str(name),
        PatternTest::Star => out.push('*'),
        PatternTest::Value(_) => unreachable!("handled by render_predicate"),
    }
    // Inside predicates: value children become ='lit' when single and last;
    // everything else nests as further predicates / path steps.
    let (branches, continuation) = split_children(node);
    let mut value_suffix: Option<&str> = None;
    let mut rest: Vec<&PatternNode> = Vec::new();
    for b in branches {
        match &b.test {
            PatternTest::Value(lit) if value_suffix.is_none() && continuation.is_none() => {
                value_suffix = Some(lit);
            }
            _ => rest.push(b),
        }
    }
    for b in rest {
        out.push('[');
        render_predicate(b, out);
        out.push(']');
    }
    if let Some(cont) = continuation {
        if cont.axis == Axis::Child {
            out.push('/');
        }
        render_relative(cont, out);
    }
    if let Some(lit) = value_suffix {
        out.push_str("='");
        out.push_str(lit);
        out.push('\'');
    }
}

#[cfg(test)]
mod tests {
    use crate::parse_query;

    /// Parse → render → parse must be a fixed point (same pattern).
    fn roundtrips(q: &str) {
        let p1 = parse_query(q).unwrap().to_pattern();
        let rendered = p1.to_expr();
        let p2 = parse_query(&rendered)
            .unwrap_or_else(|e| panic!("rendered '{rendered}' unparseable: {e}"))
            .to_pattern();
        assert_eq!(p1, p2, "{q} -> {rendered}");
    }

    #[test]
    fn table3_queries_roundtrip() {
        for q in [
            "/inproceedings/title",
            "/book/author[text='David']",
            "/*/author[text='David']",
            "//author[text='David']",
            "/book[key='books/bc/MaierW88']/author",
            "/site//item[location='US']/mail/date[text='12/15/1999']",
            "/site//person/*/city[text='Pocatello']",
            "//closed_auction[*[person='person1']]/date[text='12/15/1999']",
        ] {
            roundtrips(q);
        }
    }

    #[test]
    fn branches_and_values_roundtrip() {
        for q in [
            "/a[b][c]/d",
            "/a[b/c='1'][d='2']",
            "/a[text='x'][b]",
            "//a[//b='x']",
            "/a/*[b]/c",
            "/a[b[c][d]]/e",
        ] {
            roundtrips(q);
        }
    }

    #[test]
    fn random_patterns_roundtrip() {
        // A deterministic pseudo-random pattern generator over the
        // expressible shapes (values only as leaves; names from a small
        // alphabet).
        use crate::ast::{Axis, Pattern, PatternNode, PatternTest};
        fn next(rng: &mut u64) -> usize {
            *rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (*rng >> 33) as usize
        }
        fn gen(rng: &mut u64, depth: usize) -> PatternNode {
            let axis = if next(rng).is_multiple_of(4) {
                Axis::Descendant
            } else {
                Axis::Child
            };
            let test = match next(rng) % 6 {
                0 => PatternTest::Star,
                n => PatternTest::Tag(format!("n{}", n % 4)),
            };
            let n_children = if depth == 0 { 0 } else { next(rng) % 3 };
            let mut children: Vec<PatternNode> =
                (0..n_children).map(|_| gen(rng, depth - 1)).collect();
            if next(rng).is_multiple_of(3) {
                let v = format!("v{}", next(rng) % 5);
                children.push(PatternNode {
                    axis: Axis::Child,
                    test: PatternTest::Value(v),
                    children: Vec::new(),
                });
            }
            PatternNode {
                axis,
                test,
                children,
            }
        }
        // Branch children are unordered conjuncts; rendering may reorder
        // them (values render as predicates before the continuation path),
        // so compare modulo recursive child order.
        fn canon(n: &PatternNode) -> String {
            let mut kids: Vec<String> = n.children.iter().map(canon).collect();
            kids.sort();
            format!("{:?}|{:?}|{:?}", n.axis, n.test, kids)
        }
        let mut rng = 0x1234_5678_9abc_def0u64;
        for case in 0..300 {
            let root = gen(&mut rng, 3);
            let p1 = Pattern { root };
            let expr = p1.to_expr();
            let p2 = parse_query(&expr)
                .unwrap_or_else(|e| panic!("case {case}: '{expr}' unparseable: {e}"))
                .to_pattern();
            assert_eq!(canon(&p1.root), canon(&p2.root), "case {case}: {expr}");
        }
    }

    #[test]
    fn display_matches_to_expr() {
        let p = parse_query("/a/b[c='1']").unwrap().to_pattern();
        assert_eq!(format!("{p}"), p.to_expr());
    }
}
