//! Brute-force reference implementation of the paper's matching semantics:
//! non-contiguous subsequence matching with wildcard instantiation.
//!
//! This is the specification the index must agree with (`vist-core` tests
//! cross-check against it). It deliberately reproduces the paper's
//! semantics, *including* the known false positives relative to exact tree
//! embedding — see [`crate::matches_document`] for the exact oracle.

use vist_seq::{PathSym, Prefix, Sequence, Sym, Symbol};

use crate::translate::QuerySequence;

/// Does `data` (a document's structure-encoded sequence) contain a match for
/// `query` under the paper's subsequence semantics?
///
/// Elements must match in order at strictly increasing data positions; each
/// element's prefix pattern is rebuilt from its *parent's instantiated*
/// concrete path plus the placeholder steps between them, so a `*` or `//`
/// bound by an ancestor match constrains every descendant ("`(v2, P∗L)` is
/// not considered as a wild-card query").
#[must_use]
pub fn sequence_matches(query: &QuerySequence, data: &Sequence) -> bool {
    if query.elems.is_empty() {
        return true;
    }
    // paths[i] = concrete root-to-self path of matched query element i
    // (prefix symbols plus its own tag symbol; values contribute nothing
    // below themselves and store just the prefix).
    let mut paths: Vec<Vec<Symbol>> = vec![Vec::new(); query.elems.len()];
    match_from(query, 0, data, 0, &mut paths)
}

fn match_from(
    query: &QuerySequence,
    qi: usize,
    data: &Sequence,
    start: usize,
    paths: &mut Vec<Vec<Symbol>>,
) -> bool {
    if qi == query.elems.len() {
        return true;
    }
    let qe = &query.elems[qi];
    // Rebuild the lookup pattern from the parent's instantiated path.
    let mut pattern: Vec<PathSym> = match qe.parent {
        Some(p) => paths[p].iter().map(|&s| PathSym::Tag(s)).collect(),
        None => Vec::new(),
    };
    pattern.extend_from_slice(&qe.steps_after_parent);
    let pattern = Prefix(pattern);

    for j in start..data.0.len() {
        let de = &data.0[j];
        if de.sym != qe.sym {
            continue;
        }
        let concrete = de.prefix.as_concrete().expect("data prefixes are concrete");
        if !pattern.matches(&concrete) {
            continue;
        }
        // Bind: this element's concrete path = its prefix + its own symbol.
        paths[qi] = concrete.clone();
        if let Sym::Tag(t) = de.sym {
            paths[qi].push(t);
        }
        if match_from(query, qi + 1, data, j + 1, paths) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::{translate, TranslateOptions};
    use crate::{matches_document, parse_query};
    use vist_seq::{document_to_sequence, SiblingOrder, SymbolTable};
    use vist_xml::parse;

    /// Match under paper semantics: any alternative sequence matches.
    fn paper_match(query: &str, xml: &str) -> bool {
        let mut table = SymbolTable::new();
        let doc = parse(xml).unwrap();
        let data = document_to_sequence(&doc, &mut table, &SiblingOrder::Lexicographic);
        let pattern = parse_query(query).unwrap().to_pattern();
        let t = translate(&pattern, &mut table, &TranslateOptions::default());
        t.sequences.iter().any(|s| sequence_matches(s, &data))
    }

    fn exact_match(query: &str, xml: &str) -> bool {
        let q = parse_query(query).unwrap().to_pattern();
        let doc = parse(xml).unwrap();
        matches_document(&q, &doc, &SiblingOrder::Lexicographic)
    }

    #[test]
    fn simple_paths_agree_with_exact() {
        let cases = [
            ("/a/b", "<a><b/></a>", true),
            ("/a/b", "<a><c/></a>", false),
            ("/a/b/c", "<a><b><c/></b></a>", true),
            ("/a/b", "<a><c><b/></c></a>", false),
        ];
        for (q, xml, want) in cases {
            assert_eq!(paper_match(q, xml), want, "{q} vs {xml}");
            assert_eq!(exact_match(q, xml), want, "exact: {q} vs {xml}");
        }
    }

    #[test]
    fn branches_values_wildcards() {
        let xml = r#"<p><s><l>boston</l></s><b><l>newyork</l></b></p>"#;
        assert!(paper_match("/p[s/l='boston']/b[l='newyork']", xml));
        assert!(!paper_match("/p[s/l='tokyo']/b[l='newyork']", xml));
        assert!(paper_match("/p/*[l='boston']", xml));
        assert!(paper_match("/p/*[l='newyork']", xml));
        assert!(!paper_match("/p/*[l='tokyo']", xml));
        assert!(paper_match("//l", xml));
        assert!(paper_match("/p//l", xml));
    }

    #[test]
    fn wildcard_instantiation_prevents_cross_binding() {
        // (v, P*L) must bind to the same * as (L, P*): value 'boston' lives
        // under s/l, so /p/*[l='x'] with x under the OTHER branch must fail.
        let xml = r#"<p><s><l>boston</l></s><b><m>newyork</m></b></p>"#;
        assert!(paper_match("/p/*[l='boston']", xml));
        // 'newyork' exists but under m, and under b not s.
        assert!(!paper_match("/p/*[l='newyork']", xml));
    }

    #[test]
    fn q5_permutations_find_both_orders() {
        // Data where the C branch comes after the D branch in preorder.
        // Query /A[B/C]/B/D needs the permuted sequence to match.
        let xml_cd = "<a1><b><c/></b><b><d/></b></a1>";
        let xml_dc = "<a1><b><d/></b><b><c/></b></a1>";
        // (lowercase names to match xml)
        assert!(paper_match("/a1[b/c]/b/d", xml_cd));
        assert!(paper_match("/a1[b/c]/b/d", xml_dc));
    }

    #[test]
    fn known_false_positive_demonstrated() {
        // ViST's documented unsoundness: the query wants ONE b carrying both
        // c='1' and d='2'; the data has them under different b siblings.
        // Subsequence semantics accepts; exact semantics rejects.
        let xml = "<a><b><c>1</c></b><b><d>2</d></b></a>";
        let q = "/a/b[c='1'][d='2']";
        assert!(
            paper_match(q, xml),
            "paper semantics yields a false positive"
        );
        assert!(!exact_match(q, xml), "exact semantics rejects");
        // The non-anomalous document matches under both.
        let xml_ok = "<a><b><c>1</c><d>2</d></b></a>";
        assert!(paper_match(q, xml_ok));
        assert!(exact_match(q, xml_ok));
    }

    #[test]
    fn deep_descendant_queries() {
        let xml = "<site><x><y><item><location>US</location></item></y></x></site>";
        assert!(paper_match("/site//item[location='US']", xml));
        assert!(!paper_match("/site//item[location='EU']", xml));
        assert!(paper_match("//item/location", xml));
    }

    #[test]
    fn empty_query_matches_everything() {
        let q = QuerySequence { elems: Vec::new() };
        let mut table = SymbolTable::new();
        let doc = parse("<a/>").unwrap();
        let data = document_to_sequence(&doc, &mut table, &SiblingOrder::Lexicographic);
        assert!(sequence_matches(&q, &data));
    }
}
