//! Recursive-descent parser for the XPath subset of the paper's Table 3.
//!
//! Grammar:
//!
//! ```text
//! query     := axis step (axis step)*
//! axis      := '/' | '//'
//! step      := nametest predicate*
//! nametest  := NAME | '*'
//! predicate := '[' ('text' '=' literal
//!                  | relpath ('=' literal)?) ']'
//! relpath   := step (axis step)*          (first step: child axis)
//! literal   := "'" [^']* "'" | '"' [^"]* '"'
//! NAME      := [A-Za-z_][A-Za-z0-9_.:-]*  (plus non-ASCII)
//! ```

use std::fmt;

use crate::ast::{Axis, NameTest, Predicate, Query, Step};

/// A syntax error in a query expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryParseError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "query parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for QueryParseError {}

/// Parse a path-expression query, e.g.
/// `//closed_auction[*[person='person1']]/date[text='12/15/1999']`.
pub fn parse_query(input: &str) -> Result<Query, QueryParseError> {
    let mut p = P {
        src: input,
        bytes: input.as_bytes(),
        pos: 0,
    };
    let steps = p.parse_absolute_path()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing input"));
    }
    Ok(Query { steps })
}

struct P<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> P<'a> {
    fn err(&self, msg: impl Into<String>) -> QueryParseError {
        QueryParseError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.bytes[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn parse_axis(&mut self) -> Option<Axis> {
        if self.eat("//") {
            Some(Axis::Descendant)
        } else if self.eat("/") {
            Some(Axis::Child)
        } else {
            None
        }
    }

    fn parse_absolute_path(&mut self) -> Result<Vec<Step>, QueryParseError> {
        self.skip_ws();
        let Some(first_axis) = self.parse_axis() else {
            return Err(self.err("query must start with '/' or '//'"));
        };
        self.parse_path(first_axis)
    }

    fn parse_path(&mut self, first_axis: Axis) -> Result<Vec<Step>, QueryParseError> {
        let mut steps = vec![self.parse_step(first_axis)?];
        loop {
            let save = self.pos;
            match self.parse_axis() {
                Some(axis) => steps.push(self.parse_step(axis)?),
                None => {
                    self.pos = save;
                    return Ok(steps);
                }
            }
        }
    }

    fn parse_step(&mut self, axis: Axis) -> Result<Step, QueryParseError> {
        self.skip_ws();
        let test = if self.eat("*") {
            NameTest::Star
        } else {
            NameTest::Name(self.parse_name()?)
        };
        let mut predicates = Vec::new();
        loop {
            self.skip_ws();
            if !self.eat("[") {
                break;
            }
            predicates.push(self.parse_predicate()?);
            self.skip_ws();
            if !self.eat("]") {
                return Err(self.err("expected ']'"));
            }
        }
        Ok(Step {
            axis,
            test,
            predicates,
        })
    }

    fn parse_predicate(&mut self) -> Result<Predicate, QueryParseError> {
        self.skip_ws();
        // `text = 'lit'` — check for the keyword followed by '='.
        let save = self.pos;
        if self.eat("text") {
            self.skip_ws();
            if self.eat("=") {
                self.skip_ws();
                return Ok(Predicate::Text(self.parse_literal()?));
            }
            self.pos = save; // 'text...' was actually a name like 'texture'
        }
        // Relative path, first step child-axis unless written with // ahead.
        let first_axis = if self.eat("//") {
            Axis::Descendant
        } else {
            self.eat("/"); // tolerate an optional leading '/'
            Axis::Child
        };
        let steps = self.parse_path(first_axis)?;
        self.skip_ws();
        let value = if self.eat("=") {
            self.skip_ws();
            Some(self.parse_literal()?)
        } else {
            None
        };
        Ok(Predicate::Path { steps, value })
    }

    fn parse_name(&mut self) -> Result<String, QueryParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let ok =
                b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') || b >= 0x80;
            if !ok {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a name or '*'"));
        }
        let first = self.bytes[start];
        if first.is_ascii_digit() || matches!(first, b'-' | b'.') {
            return Err(QueryParseError {
                offset: start,
                message: "names may not start with a digit, '-' or '.'".into(),
            });
        }
        Ok(self.src[start..self.pos].to_string())
    }

    fn parse_literal(&mut self) -> Result<String, QueryParseError> {
        let quote = match self.peek() {
            Some(q @ (b'\'' | b'"')) => q,
            _ => return Err(self.err("expected a quoted literal")),
        };
        self.pos += 1;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == quote {
                let lit = self.src[start..self.pos].to_string();
                self.pos += 1;
                return Ok(lit);
            }
            self.pos += 1;
        }
        Err(self.err("unterminated literal"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_queries_all_parse() {
        // The paper's Q1–Q8 (Table 3).
        let queries = [
            "/inproceedings/title",
            "/book/author[text='David']",
            "/*/author[text='David']",
            "//author[text='David']",
            "/book[key='books/bc/MaierW88']/author",
            "/site//item[location='US']/mail/date[text='12/15/1999']",
            "/site//person/*/city[text='Pocatello']",
            "//closed_auction[*[person='person1']]/date[text='12/15/1999']",
        ];
        for q in queries {
            parse_query(q).unwrap_or_else(|e| panic!("{q}: {e}"));
        }
    }

    #[test]
    fn simple_path_structure() {
        let q = parse_query("/a/b//c").unwrap();
        assert_eq!(q.steps.len(), 3);
        assert_eq!(q.steps[0].axis, Axis::Child);
        assert_eq!(q.steps[0].test, NameTest::Name("a".into()));
        assert_eq!(q.steps[2].axis, Axis::Descendant);
        assert_eq!(q.steps[2].test, NameTest::Name("c".into()));
    }

    #[test]
    fn star_and_descendant_roots() {
        let q = parse_query("//item").unwrap();
        assert_eq!(q.steps[0].axis, Axis::Descendant);
        let q = parse_query("/*/b").unwrap();
        assert_eq!(q.steps[0].test, NameTest::Star);
    }

    #[test]
    fn predicate_forms() {
        let q = parse_query("/a[b]").unwrap();
        assert_eq!(q.steps[0].predicates.len(), 1);
        let q = parse_query("/a[b/c='x'][text=\"y\"]").unwrap();
        assert_eq!(q.steps[0].predicates.len(), 2);
        match &q.steps[0].predicates[0] {
            Predicate::Path { steps, value } => {
                assert_eq!(steps.len(), 2);
                assert_eq!(value.as_deref(), Some("x"));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(q.steps[0].predicates[1], Predicate::Text("y".into()));
    }

    #[test]
    fn nested_star_predicate() {
        // Q8's shape.
        let q = parse_query("//ca[*[person='p1']]/date").unwrap();
        let pred = &q.steps[0].predicates[0];
        match pred {
            Predicate::Path { steps, value } => {
                assert_eq!(steps[0].test, NameTest::Star);
                assert!(value.is_none());
                assert_eq!(steps[0].predicates.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn name_starting_with_text_is_not_keyword() {
        let q = parse_query("/a[texture='x']").unwrap();
        match &q.steps[0].predicates[0] {
            Predicate::Path { steps, .. } => {
                assert_eq!(steps[0].test, NameTest::Name("texture".into()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn whitespace_tolerated() {
        let q = parse_query("  /a [ b = 'x' ] / c  ").unwrap();
        assert_eq!(q.steps.len(), 2);
    }

    #[test]
    fn errors() {
        assert!(parse_query("").is_err());
        assert!(parse_query("a/b").is_err(), "must be absolute");
        assert!(parse_query("/a[").is_err());
        assert!(parse_query("/a[b='x]").is_err(), "unterminated literal");
        assert!(parse_query("/a]").is_err(), "trailing input");
        assert!(parse_query("/1bad").is_err());
        assert!(parse_query("/a[=‘x’]").is_err());
    }

    #[test]
    fn descendant_inside_predicate() {
        let q = parse_query("/a[//b='x']").unwrap();
        match &q.steps[0].predicates[0] {
            Predicate::Path { steps, .. } => assert_eq!(steps[0].axis, Axis::Descendant),
            other => panic!("{other:?}"),
        }
    }
}
