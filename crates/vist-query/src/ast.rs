//! Query AST (as parsed) and the normalized pattern tree (as matched).

/// How a step relates to its predecessor: `/` or `//`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// `/` — direct child.
    Child,
    /// `//` — descendant at any depth ≥ 1.
    Descendant,
}

/// The node test of a step: a name or `*`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameTest {
    /// A concrete element/attribute name.
    Name(String),
    /// `*` — any single element.
    Star,
}

/// One location step, e.g. `item[location='US']`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// `/` or `//` before this step.
    pub axis: Axis,
    /// Name or `*`.
    pub test: NameTest,
    /// `[...]` predicates attached to the step.
    pub predicates: Vec<Predicate>,
}

/// A `[...]` predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// `[text='lit']` — the step's own text/attribute value.
    Text(String),
    /// `[rel/path]` or `[rel/path='lit']` — existence of a branch, optionally
    /// ending in a value.
    Path {
        /// Relative steps (first step's axis is relative to the current node).
        steps: Vec<Step>,
        /// Trailing `='lit'` comparison on the last step, if any.
        value: Option<String>,
    },
}

/// A parsed absolute path query (the paper's Table 3 form).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// The absolute steps; the first step's axis is relative to the document
    /// root (`/a` vs `//a`).
    pub steps: Vec<Step>,
}

/// Node test of a [`PatternNode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternTest {
    /// A named element/attribute node.
    Tag(String),
    /// `*` — any one element (discarded at translation; becomes a `*`
    /// placeholder in descendants' prefixes).
    Star,
    /// A leaf value; compared by `h(text)`.
    Value(String),
}

impl PatternTest {
    /// The tag name, when this is a `Tag` test.
    #[must_use]
    pub fn name(&self) -> Option<&str> {
        match self {
            PatternTest::Tag(n) => Some(n),
            _ => None,
        }
    }
}

/// A node of the normalized query tree (the paper's Figure 2 graphs):
/// every step and predicate lowered onto the record-tree model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternNode {
    /// Relation to the parent pattern node.
    pub axis: Axis,
    /// What this node must match.
    pub test: PatternTest,
    /// Branch children (predicates and the continuation path alike).
    pub children: Vec<PatternNode>,
}

/// A whole query pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    /// The root pattern node (relates to the document root via its axis).
    pub root: PatternNode,
}

impl Query {
    /// Normalize into a [`Pattern`] tree: nest the path steps, attach
    /// predicates as branch children, lower `text=`/`=` comparisons to
    /// `Value` leaf children.
    ///
    /// # Panics
    /// Panics if the query has no steps (the parser never produces that).
    #[must_use]
    pub fn to_pattern(&self) -> Pattern {
        assert!(!self.steps.is_empty(), "empty query");
        Pattern {
            root: nest_steps(&self.steps, None),
        }
    }
}

/// Build the chain for `steps`, with `tail_value` attached to the last step.
fn nest_steps(steps: &[Step], tail_value: Option<&str>) -> PatternNode {
    let step = &steps[0];
    let mut node = PatternNode {
        axis: step.axis,
        test: match &step.test {
            NameTest::Name(n) => PatternTest::Tag(n.clone()),
            NameTest::Star => PatternTest::Star,
        },
        children: Vec::new(),
    };
    for pred in &step.predicates {
        match pred {
            Predicate::Text(lit) => node.children.push(PatternNode {
                axis: Axis::Child,
                test: PatternTest::Value(lit.clone()),
                children: Vec::new(),
            }),
            Predicate::Path { steps, value } => {
                node.children.push(nest_steps(steps, value.as_deref()));
            }
        }
    }
    if steps.len() > 1 {
        node.children.push(nest_steps(&steps[1..], tail_value));
    } else if let Some(lit) = tail_value {
        node.children.push(PatternNode {
            axis: Axis::Child,
            test: PatternTest::Value(lit.to_string()),
            children: Vec::new(),
        });
    }
    node
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(axis: Axis, name: &str) -> Step {
        Step {
            axis,
            test: NameTest::Name(name.into()),
            predicates: Vec::new(),
        }
    }

    #[test]
    fn simple_path_nests() {
        let q = Query {
            steps: vec![step(Axis::Child, "a"), step(Axis::Child, "b")],
        };
        let p = q.to_pattern();
        assert_eq!(p.root.test, PatternTest::Tag("a".into()));
        assert_eq!(p.root.children.len(), 1);
        assert_eq!(p.root.children[0].test, PatternTest::Tag("b".into()));
    }

    #[test]
    fn predicates_become_branches() {
        let mut s = step(Axis::Child, "book");
        s.predicates.push(Predicate::Path {
            steps: vec![step(Axis::Child, "author")],
            value: Some("David".into()),
        });
        let q = Query {
            steps: vec![s, step(Axis::Child, "title")],
        };
        let p = q.to_pattern();
        assert_eq!(p.root.children.len(), 2);
        // Branch: author -> value(David)
        let author = &p.root.children[0];
        assert_eq!(author.test, PatternTest::Tag("author".into()));
        assert_eq!(author.children[0].test, PatternTest::Value("David".into()));
        // Continuation: title
        assert_eq!(p.root.children[1].test, PatternTest::Tag("title".into()));
    }

    #[test]
    fn text_predicate_on_last_step() {
        let mut s = step(Axis::Child, "author");
        s.predicates.push(Predicate::Text("David".into()));
        let q = Query { steps: vec![s] };
        let p = q.to_pattern();
        assert_eq!(p.root.children.len(), 1);
        assert_eq!(p.root.children[0].test, PatternTest::Value("David".into()));
    }

    #[test]
    fn trailing_value_on_path_predicate() {
        // /a[b/c='x'] — the value hangs off c, not b.
        let mut s = step(Axis::Child, "a");
        s.predicates.push(Predicate::Path {
            steps: vec![step(Axis::Child, "b"), step(Axis::Child, "c")],
            value: Some("x".into()),
        });
        let q = Query { steps: vec![s] };
        let p = q.to_pattern();
        let b = &p.root.children[0];
        let c = &b.children[0];
        assert_eq!(c.test, PatternTest::Tag("c".into()));
        assert_eq!(c.children[0].test, PatternTest::Value("x".into()));
    }
}
