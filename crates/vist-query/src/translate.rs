//! Query tree → structure-encoded query sequence(s) (paper Section 2).
//!
//! Rules, from the paper:
//!
//! * queries are converted by preorder traversal, like data;
//! * wildcard nodes (`*`, `//`) are **discarded**, but "the prefix paths of
//!   their sub nodes will contain a `*` or `//` symbol as a place holder";
//! * sibling order must agree with the data conversion (DTD order, else
//!   lexicographic, values first);
//! * when a branch has children whose relative order in the data preorder
//!   cannot be determined — the paper's Q5 case of *identical sibling names*,
//!   which we extend to wildcard-rooted and descendant-axis branches whose
//!   names are unknown — the query is converted into **multiple sequences**
//!   ("we find matches for these two sequences separately and union their
//!   results").
//!
//! Each produced [`QuerySequence`] also carries, per element, its parent
//! element index and the placeholder steps separating it from the parent, so
//! the search algorithm can *instantiate* wildcards once matched ("the
//! matching of `(L, P*)` will instantiate the `*` in `(v2, P*L)` to a
//! concrete symbol").

use vist_seq::{hash_value, PathSym, Prefix, SiblingOrder, Sym, SymbolTable};

use crate::ast::{Axis, Pattern, PatternNode, PatternTest};

/// One element of a query sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryElem {
    /// The element's symbol (always concrete — wildcard nodes are discarded).
    pub sym: Sym,
    /// Full pattern prefix, possibly containing `*` / `//` placeholders.
    pub prefix: Prefix,
    /// Index (within the sequence) of the nearest emitted ancestor.
    pub parent: Option<usize>,
    /// Placeholder/tag steps strictly between the parent's path and this
    /// element (excluding the parent's own symbol). Used to rebuild the
    /// lookup prefix from the parent's *instantiated* path during search.
    pub steps_after_parent: Vec<PathSym>,
}

/// A structure-encoded query sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySequence {
    /// Elements in query preorder.
    pub elems: Vec<QueryElem>,
}

/// Options for [`translate`].
#[derive(Debug, Clone)]
pub struct TranslateOptions {
    /// Sibling ordering — must match the one the data was indexed with.
    pub order: SiblingOrder,
    /// Cap on the number of alternative sequences generated for ambiguous
    /// branch orders. Exceeding the cap truncates (a potential source of
    /// false negatives, reported via `Translation::truncated`).
    pub max_sequences: usize,
}

impl Default for TranslateOptions {
    fn default() -> Self {
        TranslateOptions {
            order: SiblingOrder::Lexicographic,
            max_sequences: 24,
        }
    }
}

/// Result of translation: the alternative sequences to match and union.
#[derive(Debug, Clone)]
pub struct Translation {
    /// Alternative query sequences (≥ 1); results are unioned.
    pub sequences: Vec<QuerySequence>,
    /// `true` if ambiguity exceeded `max_sequences` and alternatives were
    /// dropped.
    pub truncated: bool,
}

/// How query tag names are mapped to symbols during translation.
pub trait NameResolver {
    /// The symbol for `name`, or `None` when it cannot exist in the data.
    fn sym(&mut self, name: &str) -> Option<vist_seq::Symbol>;
}

/// Interns unknown names (the default: harmless, but needs `&mut`).
impl NameResolver for SymbolTable {
    fn sym(&mut self, name: &str) -> Option<vist_seq::Symbol> {
        Some(self.intern(name))
    }
}

/// Interns unknown names into the overlay only, leaving the shared base
/// table untouched — the query path's no-clone resolver. Overlay symbols
/// cannot occur in any data sequence, so elements naming them simply never
/// match (same outcome as [`try_translate`], but the sequence is still
/// produced, e.g. for `explain`).
impl NameResolver for vist_seq::TableOverlay<'_> {
    fn sym(&mut self, name: &str) -> Option<vist_seq::Symbol> {
        Some(self.intern(name))
    }
}

/// Read-only resolution: unknown names mean the query cannot match.
struct ReadOnly<'a>(&'a SymbolTable);

impl NameResolver for ReadOnly<'_> {
    fn sym(&mut self, name: &str) -> Option<vist_seq::Symbol> {
        self.0.lookup(name)
    }
}

/// Translate a pattern into its query sequence(s).
///
/// Interns query names into `table`; names unknown to the data simply never
/// match.
pub fn translate(
    pattern: &Pattern,
    table: &mut SymbolTable,
    opts: &TranslateOptions,
) -> Translation {
    translate_with(pattern, table, opts).expect("interning resolver never fails")
}

/// Translate without mutating the symbol table. Returns `None` when the
/// query names an element/attribute absent from `table` — such a query can
/// match nothing, so callers should return an empty result. This enables
/// shared (`&self`) query execution.
pub fn try_translate(
    pattern: &Pattern,
    table: &SymbolTable,
    opts: &TranslateOptions,
) -> Option<Translation> {
    translate_with(pattern, &mut ReadOnly(table), opts)
}

/// Translate with an explicit [`NameResolver`].
pub fn translate_with(
    pattern: &Pattern,
    resolver: &mut dyn NameResolver,
    opts: &TranslateOptions,
) -> Option<Translation> {
    let mut out = Vec::new();
    let mut truncated = false;
    let mut failed = false;
    // Enumerate child-order choices lazily through a stack of pending
    // emissions; simplest correct approach: recursively expand the cartesian
    // product of per-node orderings, pruning at the cap.
    let mut state = EmitState {
        table: resolver,
        opts,
        results: &mut out,
        truncated: &mut truncated,
        failed: &mut failed,
    };
    let seed = QuerySequence { elems: Vec::new() };
    emit_node(
        &mut state,
        &pattern.root,
        seed,
        None,
        Vec::new(),
        Prefix::empty(),
        &mut |state, seq| {
            if state.results.len() < state.opts.max_sequences {
                if !state.results.contains(&seq) {
                    state.results.push(seq);
                }
            } else {
                *state.truncated = true;
            }
        },
    );
    if failed {
        return None;
    }
    Some(Translation {
        sequences: out,
        truncated,
    })
}

struct EmitState<'a> {
    table: &'a mut dyn NameResolver,
    opts: &'a TranslateOptions,
    results: &'a mut Vec<QuerySequence>,
    truncated: &'a mut bool,
    failed: &'a mut bool,
}

type Sink<'s, 'f> = dyn FnMut(&mut EmitState<'s>, QuerySequence) + 'f;

/// Emit `node` (and its subtree, over all ambiguous child orders) onto the
/// partial sequence `seq`, invoking `done` once per completed alternative.
fn emit_node<'a>(
    state: &mut EmitState<'a>,
    node: &PatternNode,
    seq: QuerySequence,
    parent: Option<usize>,
    pending: Vec<PathSym>,
    parent_path: Prefix,
    done: &mut Sink<'a, '_>,
) {
    // Steps contributed by this node's axis.
    let mut eff = pending;
    if node.axis == Axis::Descendant {
        eff.push(PathSym::DoubleSlash);
    }
    match &node.test {
        PatternTest::Star => {
            // Discarded: children inherit the placeholders.
            let mut child_pending = eff;
            child_pending.push(PathSym::Star);
            emit_children(state, node, seq, parent, child_pending, parent_path, done);
        }
        PatternTest::Tag(name) => {
            let Some(symbol) = state.table.sym(name) else {
                *state.failed = true;
                return;
            };
            let sym = Sym::Tag(symbol);
            let mut prefix = parent_path.clone();
            for s in &eff {
                prefix = prefix.child(*s);
            }
            let mut seq = seq;
            let idx = seq.elems.len();
            seq.elems.push(QueryElem {
                sym,
                prefix: prefix.clone(),
                parent,
                steps_after_parent: eff,
            });
            let child_path = prefix.child(PathSym::Tag(match sym {
                Sym::Tag(t) => t,
                Sym::Value(_) => unreachable!(),
            }));
            emit_children(state, node, seq, Some(idx), Vec::new(), child_path, done);
        }
        PatternTest::Value(lit) => {
            let sym = Sym::Value(hash_value(lit));
            let mut prefix = parent_path;
            for s in &eff {
                prefix = prefix.child(*s);
            }
            let mut seq = seq;
            seq.elems.push(QueryElem {
                sym,
                prefix,
                parent,
                steps_after_parent: eff,
            });
            debug_assert!(node.children.is_empty(), "value nodes are leaves");
            done(state, seq);
        }
    }
}

/// Emit the node's children in every admissible order.
#[allow(clippy::too_many_arguments)]
fn emit_children<'a>(
    state: &mut EmitState<'a>,
    node: &PatternNode,
    seq: QuerySequence,
    parent: Option<usize>,
    pending: Vec<PathSym>,
    parent_path: Prefix,
    done: &mut Sink<'a, '_>,
) {
    if node.children.is_empty() {
        done(state, seq);
        return;
    }
    let (orders, hit_cap) =
        child_orders(&node.children, &state.opts.order, state.opts.max_sequences);
    if hit_cap {
        *state.truncated = true;
    }
    for order in orders {
        emit_child_list(
            state,
            node,
            &order,
            0,
            seq.clone(),
            parent,
            pending.clone(),
            parent_path.clone(),
            done,
        );
    }
}

/// Emit children `order[at..]` in order, chaining through the sink.
#[allow(clippy::too_many_arguments)]
fn emit_child_list<'a>(
    state: &mut EmitState<'a>,
    node: &PatternNode,
    order: &[usize],
    at: usize,
    seq: QuerySequence,
    parent: Option<usize>,
    pending: Vec<PathSym>,
    parent_path: Prefix,
    done: &mut Sink<'a, '_>,
) {
    if at == order.len() {
        done(state, seq);
        return;
    }
    let child = &node.children[order[at]];
    emit_node(
        state,
        child,
        seq,
        parent,
        pending.clone(),
        parent_path.clone(),
        &mut |state, seq| {
            emit_child_list(
                state,
                node,
                order,
                at + 1,
                seq,
                parent,
                pending.clone(),
                parent_path.clone(),
                done,
            );
        },
    );
}

/// All admissible child orders, capped.
///
/// * value children sort first, tag children by the sibling order;
/// * runs of same-name tag children with non-identical subtrees generate all
///   permutations of the run (the paper's Q5 rule);
/// * "floating" children — `*`-rooted or descendant-axis branches, whose
///   position in the data preorder is unknowable — are interleaved at every
///   position.
fn child_orders(
    children: &[PatternNode],
    order: &SiblingOrder,
    cap: usize,
) -> (Vec<Vec<usize>>, bool) {
    // Generate up to cap+1 orders so truncation is detectable.
    let gen_cap = cap + 1;
    let mut fixed: Vec<usize> = Vec::new();
    let mut floating: Vec<usize> = Vec::new();
    for (i, c) in children.iter().enumerate() {
        let is_floating = matches!(c.test, PatternTest::Star) || c.axis == Axis::Descendant;
        if is_floating {
            floating.push(i);
        } else {
            fixed.push(i);
        }
    }
    // Sort the fixed children canonically (values first, then by name).
    fixed.sort_by(|&a, &b| sort_key(&children[a], order).cmp(&sort_key(&children[b], order)));

    // Permute same-key runs where members differ.
    let mut fixed_orders: Vec<Vec<usize>> = vec![Vec::new()];
    let mut i = 0;
    while i < fixed.len() {
        let mut j = i + 1;
        while j < fixed.len()
            && sort_key(&children[fixed[i]], order) == sort_key(&children[fixed[j]], order)
        {
            j += 1;
        }
        let run = &fixed[i..j];
        let all_identical = run.windows(2).all(|w| children[w[0]] == children[w[1]]);
        let run_perms: Vec<Vec<usize>> = if run.len() == 1 || all_identical {
            vec![run.to_vec()]
        } else {
            permutations(run, gen_cap)
        };
        let mut next = Vec::new();
        'outer: for base in &fixed_orders {
            for perm in &run_perms {
                if next.len() >= gen_cap {
                    break 'outer;
                }
                let mut v = base.clone();
                v.extend_from_slice(perm);
                next.push(v);
            }
        }
        fixed_orders = next;
        i = j;
    }

    // Interleave floating children at every position (keeping the floats'
    // relative order among themselves — different float orders are covered
    // by interleaving each independently, capped).
    let mut orders = fixed_orders;
    for &f in &floating {
        let mut next = Vec::new();
        'outer: for base in &orders {
            for pos in 0..=base.len() {
                if next.len() >= gen_cap {
                    break 'outer;
                }
                let mut v = base.clone();
                v.insert(pos, f);
                next.push(v);
            }
        }
        orders = next;
    }
    let hit_cap = orders.len() > cap;
    orders.truncate(cap.max(1));
    (orders, hit_cap)
}

fn sort_key<'a>(n: &'a PatternNode, order: &SiblingOrder) -> (u8, usize, &'a str) {
    match &n.test {
        PatternTest::Value(_) => (0, 0, ""),
        PatternTest::Tag(name) => {
            let (rank, nm) = order.rank(name);
            (1, rank, nm)
        }
        PatternTest::Star => (2, 0, ""), // floating; key unused for ordering
    }
}

fn permutations(items: &[usize], cap: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut items = items.to_vec();
    permute_rec(&mut items, 0, cap, &mut out);
    out
}

fn permute_rec(items: &mut Vec<usize>, at: usize, cap: usize, out: &mut Vec<Vec<usize>>) {
    if out.len() >= cap {
        return;
    }
    if at == items.len() {
        out.push(items.clone());
        return;
    }
    for i in at..items.len() {
        items.swap(at, i);
        permute_rec(items, at + 1, cap, out);
        items.swap(at, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;

    fn xlate(q: &str) -> (Translation, SymbolTable) {
        let mut table = SymbolTable::new();
        let pattern = parse_query(q).unwrap().to_pattern();
        let t = translate(&pattern, &mut table, &TranslateOptions::default());
        (t, table)
    }

    fn render(seq: &QuerySequence, table: &SymbolTable) -> String {
        let mut out = String::new();
        for e in &seq.elems {
            let sym = match e.sym {
                Sym::Tag(t) => table.name(t).to_string(),
                Sym::Value(_) => "v".to_string(),
            };
            out.push_str(&format!("({},{})", sym, e.prefix.display(table)));
        }
        out
    }

    #[test]
    fn table2_q1_simple_path() {
        // /P/S/I/M → (P,)(S,P)(I,PS)(M,PSI)
        let (t, table) = xlate("/P/S/I/M");
        assert_eq!(t.sequences.len(), 1);
        assert_eq!(render(&t.sequences[0], &table), "(P,)(S,P)(I,P/S)(M,P/S/I)");
        assert!(!t.truncated);
    }

    #[test]
    fn table2_q2_branching() {
        // /P[S[L=v5]]/B[L=v7] →
        // (P,)(S,P)(L,PS)(v5,PSL)(B,P)(L,PB)(v7,PBL)
        let (t, table) = xlate("/P[S[L='v5']]/B[L='v7']");
        assert_eq!(
            t.sequences.len(),
            1,
            "B and S are distinct names: no ambiguity"
        );
        assert_eq!(
            render(&t.sequences[0], &table),
            "(P,)(B,P)(L,P/B)(v,P/B/L)(S,P)(L,P/S)(v,P/S/L)"
        );
        // Note: lexicographic order puts B before S, unlike the paper's
        // hand-drawn order; data conversion uses the same rule, so matching
        // is consistent.
    }

    #[test]
    fn table2_q3_star() {
        // /P/*[L=v5] → (P,)(L,P*)(v5,P*L)
        let (t, table) = xlate("/P/*[L='v5']");
        assert_eq!(t.sequences.len(), 1);
        assert_eq!(render(&t.sequences[0], &table), "(P,)(L,P/*)(v,P/*/L)");
        // Parent/step bookkeeping for instantiation:
        let s = &t.sequences[0];
        assert_eq!(s.elems[1].parent, Some(0));
        assert_eq!(s.elems[1].steps_after_parent, vec![PathSym::Star]);
        assert_eq!(s.elems[2].parent, Some(1));
        assert!(s.elems[2].steps_after_parent.is_empty());
    }

    #[test]
    fn table2_q4_double_slash() {
        // /P//I[M=v3] → (P,)(I,P//)(M,P//I)(v3,P//IM)
        let (t, table) = xlate("/P//I[M='v3']");
        assert_eq!(t.sequences.len(), 1);
        assert_eq!(
            render(&t.sequences[0], &table),
            "(P,)(I,P///)(M,P////I)(v,P////I/M)"
        );
        let s = &t.sequences[0];
        assert_eq!(s.elems[1].steps_after_parent, vec![PathSym::DoubleSlash]);
    }

    #[test]
    fn q5_identical_sibling_names_produce_permutations() {
        // /A[B/C]/B/D — two B branches with different subtrees → 2 sequences.
        let (t, table) = xlate("/A[B/C]/B/D");
        assert_eq!(t.sequences.len(), 2);
        let rendered: Vec<String> = t.sequences.iter().map(|s| render(s, &table)).collect();
        assert!(rendered.contains(&"(A,)(B,A)(C,A/B)(B,A)(D,A/B)".to_string()));
        assert!(rendered.contains(&"(A,)(B,A)(D,A/B)(B,A)(C,A/B)".to_string()));
    }

    #[test]
    fn identical_branches_do_not_permute() {
        let (t, _) = xlate("/A[B/C][B/C]");
        assert_eq!(t.sequences.len(), 1, "identical subtrees need no union");
    }

    #[test]
    fn star_branch_floats_to_every_position() {
        // Q8 shape: a * branch plus a named branch → 2 placements.
        let (t, _) = xlate("//ca[*[p='1']]/date");
        assert_eq!(t.sequences.len(), 2);
    }

    #[test]
    fn leading_descendant_and_star_roots() {
        let (t, table) = xlate("//author[text='David']");
        assert_eq!(render(&t.sequences[0], &table), "(author,//)(v,///author)");
        let (t, table) = xlate("/*/author[text='David']");
        assert_eq!(render(&t.sequences[0], &table), "(author,*)(v,*/author)");
    }

    #[test]
    fn values_sort_before_tags() {
        let (t, table) = xlate("/a[b][text='x']");
        assert_eq!(render(&t.sequences[0], &table), "(a,)(v,a)(b,a)");
    }

    #[test]
    fn cap_truncates_explosive_queries() {
        let mut table = SymbolTable::new();
        // Five identical-name branches with distinct subtrees: 5! = 120 > 24.
        let pattern = parse_query("/a[b/c1][b/c2][b/c3][b/c4][b/c5]")
            .unwrap()
            .to_pattern();
        let t = translate(&pattern, &mut table, &TranslateOptions::default());
        assert!(t.truncated);
        assert_eq!(t.sequences.len(), 24);
    }

    #[test]
    fn try_translate_is_read_only() {
        let mut table = SymbolTable::new();
        table.intern("a");
        table.intern("b");
        let before = table.len();
        // All names known: same result as the interning translate.
        let pattern = parse_query("/a/b").unwrap().to_pattern();
        let ro = try_translate(&pattern, &table, &TranslateOptions::default()).unwrap();
        assert_eq!(ro.sequences.len(), 1);
        assert_eq!(table.len(), before, "no interning");
        // Unknown name: unsatisfiable.
        let pattern = parse_query("/a/zzz").unwrap().to_pattern();
        assert!(try_translate(&pattern, &table, &TranslateOptions::default()).is_none());
        assert_eq!(table.len(), before);
        // Wildcards don't need names.
        let pattern = parse_query("/a/*").unwrap().to_pattern();
        assert!(try_translate(&pattern, &table, &TranslateOptions::default()).is_some());
    }

    #[test]
    fn overlay_resolver_keeps_base_table_clean() {
        let mut base = SymbolTable::new();
        let a = base.intern("a");
        let before = base.len();
        let pattern = parse_query("/a/zzz").unwrap().to_pattern();
        let mut ov = vist_seq::TableOverlay::new(&base);
        let t = translate_with(&pattern, &mut ov, &TranslateOptions::default()).unwrap();
        assert_eq!(t.sequences.len(), 1);
        assert_eq!(base.len(), before, "translation must not grow the base");
        let elems = &t.sequences[0].elems;
        assert_eq!(elems[0].sym, Sym::Tag(a));
        // The query-only name resolved to an overlay symbol past the base.
        let Sym::Tag(z) = elems[1].sym else {
            panic!("tag expected");
        };
        assert!(ov.is_overlay(z));
        assert_eq!(ov.name(z), "zzz");
    }

    #[test]
    fn parent_chain_is_consistent() {
        let (t, _) = xlate("/site//item[location='US']/mail/date[text='12/15/1999']");
        for s in &t.sequences {
            for (i, e) in s.elems.iter().enumerate() {
                if let Some(p) = e.parent {
                    assert!(p < i, "parent precedes child");
                    // Child prefix extends parent's prefix + sym + steps.
                    assert_eq!(
                        e.prefix.len(),
                        s.elems[p].prefix.len() + 1 + e.steps_after_parent.len()
                    );
                }
            }
        }
    }
}
