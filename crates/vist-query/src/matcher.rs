//! Exact tree-pattern matching against documents — the ground truth.
//!
//! ViST's subsequence matching is known (from follow-up literature) to admit
//! **false positives**: a non-contiguous subsequence match does not always
//! correspond to a valid embedding of the query tree, because two query
//! branches can bind to *different* instances of a repeated ancestor. This
//! module implements the exact XPath-style semantics by direct tree
//! embedding; it is used as the test oracle and as the optional
//! post-verification filter on ViST's candidate results.

use vist_seq::{hash_value, RecordNode, SiblingOrder, Sym, SymbolTable};
use vist_xml::Document;

use crate::ast::{Axis, Pattern, PatternNode, PatternTest};

/// Does `doc` match the query pattern? (Exact semantics.)
///
/// The document is lowered to its record tree with the given sibling order
/// (ordering does not affect the answer, but the lowering of attributes and
/// hashing of values must agree with the index side).
#[must_use]
pub fn matches_document(pattern: &Pattern, doc: &Document, order: &SiblingOrder) -> bool {
    let mut scratch = SymbolTable::new();
    match vist_seq::document_to_record_tree(doc, &mut scratch, order) {
        Some(tree) => matches_record_tree(pattern, &tree),
        None => false,
    }
}

/// Does the record tree match the query pattern? (Exact semantics.)
#[must_use]
pub fn matches_record_tree(pattern: &Pattern, root: &RecordNode) -> bool {
    match pattern.root.axis {
        // `/a`: the root element itself must match.
        Axis::Child => node_matches(&pattern.root, root),
        // `//a`: any node (the root included — it is already a descendant of
        // the conceptual document node).
        Axis::Descendant => any_self_or_descendant(root, |n| node_matches(&pattern.root, n)),
    }
}

fn any_self_or_descendant(node: &RecordNode, f: impl Fn(&RecordNode) -> bool + Copy) -> bool {
    if f(node) {
        return true;
    }
    node.children.iter().any(|c| any_self_or_descendant(c, f))
}

fn any_proper_descendant(node: &RecordNode, f: impl Fn(&RecordNode) -> bool + Copy) -> bool {
    node.children.iter().any(|c| any_self_or_descendant(c, f))
}

fn test_matches(test: &PatternTest, node: &RecordNode) -> bool {
    match (test, node.sym) {
        (PatternTest::Tag(name), Sym::Tag(_)) => node.name == *name,
        (PatternTest::Star, Sym::Tag(_)) => true,
        (PatternTest::Value(lit), Sym::Value(h)) => hash_value(lit) == h,
        _ => false,
    }
}

/// XPath predicate semantics: every pattern child must be satisfiable under
/// this node, independently of the others (two predicates may bind to the
/// same document child).
fn node_matches(p: &PatternNode, node: &RecordNode) -> bool {
    if !test_matches(&p.test, node) {
        return false;
    }
    p.children.iter().all(|pc| match pc.axis {
        Axis::Child => node.children.iter().any(|dc| node_matches(pc, dc)),
        Axis::Descendant => any_proper_descendant(node, |d| node_matches(pc, d)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;
    use vist_xml::parse;

    fn check(query: &str, xml: &str) -> bool {
        let q = parse_query(query).unwrap().to_pattern();
        let doc = parse(xml).unwrap();
        matches_document(&q, &doc, &SiblingOrder::Lexicographic)
    }

    #[test]
    fn simple_paths() {
        assert!(check("/a/b", "<a><b/></a>"));
        assert!(!check("/a/b", "<a><c/></a>"));
        assert!(!check("/a/b", "<x><b/></x>"));
        assert!(!check("/a/b", "<a><c><b/></c></a>"), "b not a direct child");
    }

    #[test]
    fn descendant_axis() {
        assert!(check("/a//b", "<a><b/></a>"), "// includes depth 1");
        assert!(check("/a//b", "<a><c><d><b/></d></c></a>"));
        assert!(!check("/a//b", "<a><c/></a>"));
        assert!(check("//b", "<b/>"), "leading // can match the root");
        assert!(check("//b", "<a><b/></a>"));
    }

    #[test]
    fn star_matches_any_element_not_values() {
        assert!(check("/a/*/c", "<a><x><c/></x></a>"));
        assert!(check("/a/*/c", "<a><y><c/></y></a>"));
        assert!(!check("/a/*/c", "<a><c/></a>"), "* consumes one level");
        // * must not match a text value node.
        assert!(!check("/a/*/c", "<a>just text</a>"));
    }

    #[test]
    fn text_and_attribute_values() {
        assert!(check(
            "/book/author[text='David']",
            "<book><author>David</author></book>"
        ));
        assert!(!check(
            "/book/author[text='David']",
            "<book><author>Mary</author></book>"
        ));
        // Attributes are child nodes in the record-tree model.
        assert!(check(
            "/book[key='k1']/author",
            r#"<book key="k1"><author>x</author></book>"#
        ));
        assert!(!check(
            "/book[key='k1']/author",
            r#"<book key="k2"><author>x</author></book>"#
        ));
        // Value comparison trims, like hash_value.
        assert!(check("/a[text='v']", "<a>  v  </a>"));
    }

    #[test]
    fn branch_predicates_conjunctive() {
        let xml = r#"<p><s><l>boston</l></s><b><l>newyork</l></b></p>"#;
        assert!(check("/p[s/l='boston']/b[l='newyork']", xml));
        assert!(!check("/p[s/l='boston']/b[l='tokyo']", xml));
        assert!(!check("/p[s/l='chicago']/b[l='newyork']", xml));
    }

    #[test]
    fn correct_binding_across_branches() {
        // The classic ViST false-positive shape: query asks for ONE b with
        // both c='1' and d='2'; the document has two b's each carrying one.
        // Exact matching must say NO.
        let xml = "<a><b><c>1</c></b><b><d>2</d></b></a>";
        assert!(!check("/a/b[c='1'][d='2']", xml));
        // And YES when a single b carries both.
        let xml2 = "<a><b><c>1</c><d>2</d></b></a>";
        assert!(check("/a/b[c='1'][d='2']", xml2));
    }

    #[test]
    fn existence_predicate_without_value() {
        assert!(check("/a[b]/c", "<a><b/><c/></a>"));
        assert!(!check("/a[b]/c", "<a><c/></a>"));
    }

    #[test]
    fn nested_star_predicate_q8_shape() {
        let xml = "<ca><ann><person>p1</person></ann><date>d</date></ca>";
        assert!(check("//ca[*[person='p1']]/date", xml));
        assert!(!check("//ca[*[person='p2']]/date", xml));
        // The * requires an intermediate element: person directly under ca
        // does not satisfy *[person=..].
        let flat = "<ca><person>p1</person><date>d</date></ca>";
        assert!(!check("//ca[*[person='p1']]/date", flat));
    }

    #[test]
    fn two_predicates_may_share_one_child() {
        // XPath semantics: [b][b/c] can both bind the same b.
        assert!(check("/a[b][b/c]", "<a><b><c/></b></a>"));
    }

    #[test]
    fn descendant_value_search() {
        assert!(check(
            "//item[location='US']",
            r#"<site><r><item location="US"/></r></site>"#
        ));
        assert!(!check(
            "//item[location='US']",
            r#"<site><r><item location="EU"/></r></site>"#
        ));
    }
}
