//! Query language and query-side algorithms for the ViST reproduction.
//!
//! The paper expresses queries as XPath-style path expressions with
//! branches (`[...]` predicates), wildcards (`*`), and descendant steps
//! (`//`) — see its Table 3. This crate provides:
//!
//! * [`parse_query`] — a recursive-descent parser for exactly that subset,
//! * [`Pattern`] — the normalized *query tree* over the record-tree model
//!   (attributes lowered to child nodes, values hashed), i.e. the graphs of
//!   the paper's Figure 2,
//! * [`translate`] — the query tree → structure-encoded query sequence(s)
//!   conversion of Section 2, including the Q5 rule (identical sibling names
//!   under a branch ⇒ emit every permutation and union the results) extended
//!   to wildcard-rooted branches whose sibling position is unknowable,
//! * [`matches_document`] / [`matches_record_tree`] — an **exact**
//!   tree-embedding matcher used as ground truth in tests and as the
//!   optional post-verification step that removes ViST's known false
//!   positives, and
//! * [`sequence_matches`] — a brute-force reference implementation of the
//!   paper's (non-contiguous) subsequence-matching semantics, with wildcard
//!   instantiation, used to validate the index.
//!
//! # Example
//!
//! ```
//! use vist_query::parse_query;
//!
//! let q = parse_query("/site//item[location='US']/mail/date[text='12/15/1999']").unwrap();
//! let pattern = q.to_pattern();
//! assert_eq!(pattern.root.test.name(), Some("site"));
//! ```

mod ast;
mod display;
mod matcher;
mod parser;
mod seqmatch;
mod translate;

pub use ast::{Axis, NameTest, Pattern, PatternNode, PatternTest, Predicate, Query, Step};
pub use matcher::{matches_document, matches_record_tree};
pub use parser::{parse_query, QueryParseError};
pub use seqmatch::sequence_matches;
pub use translate::{
    translate, translate_with, try_translate, NameResolver, QueryElem, QuerySequence,
    TranslateOptions, Translation,
};
