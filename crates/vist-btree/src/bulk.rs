//! Bottom-up bulk loading from sorted input.
//!
//! Builds leaves left to right at full occupancy, then each internal level
//! above — O(n) page writes with no splits, the standard way to materialize
//! a static index like RIST ("iii) for each node ... inserting it into the
//! D-Ancestor B+Tree ... and then the S-Ancestor B+Tree").

use std::sync::Arc;

use vist_storage::{BufferPool, Error, PageId, Result, SlotId, SlottedPageMut, INVALID_PAGE};

use crate::node::{
    init_internal, init_leaf, internal_cell, leaf_cell, set_link1, set_link2, NODE_HDR,
};
use crate::tree::BTree;

impl BTree {
    /// Build a tree from `items`, which must be strictly ascending by key
    /// (duplicates or disorder yield [`Error::Corrupt`]). Equivalent to
    /// inserting every pair into an empty tree, but O(n) and with fully
    /// packed pages.
    pub fn bulk_load<I>(pool: Arc<BufferPool>, items: I) -> Result<Self>
    where
        I: IntoIterator<Item = (Vec<u8>, Vec<u8>)>,
    {
        let max_cell = BTree::max_cell_for(&pool);

        // ---- leaf level -------------------------------------------------
        let mut leaves: Vec<(Vec<u8>, PageId)> = Vec::new(); // (first key, pid)
        let mut cur: Option<(PageId, Vec<u8>)> = None; // (pid, first key)
        let mut cur_slot: SlotId = 0;
        let mut prev_leaf: PageId = INVALID_PAGE;
        let mut last_key: Option<Vec<u8>> = None;

        for (key, value) in items {
            if let Some(lk) = &last_key {
                if key.as_slice() <= lk.as_slice() {
                    return Err(Error::Corrupt(
                        "bulk_load input must be strictly ascending".into(),
                    ));
                }
            }
            let cell = leaf_cell(&key, &value);
            if cell.len() > max_cell {
                return Err(Error::PageOverflow {
                    requested: cell.len(),
                    available: max_cell,
                });
            }
            // Try to append to the current leaf; on overflow, seal it and
            // start a new one.
            let mut placed = false;
            if let Some((pid, _)) = &cur {
                let mut page = pool.fetch_mut(*pid)?;
                let mut p = SlottedPageMut::new(page.data_mut(), NODE_HDR);
                match p.insert(cur_slot, &cell) {
                    Ok(()) => {
                        cur_slot += 1;
                        placed = true;
                    }
                    Err(Error::PageOverflow { .. }) => {}
                    Err(e) => return Err(e),
                }
            }
            if !placed {
                // Seal the current leaf and open a fresh one. The sealed
                // leaf's separator is suffix-truncated against the new key.
                if let Some((pid, first)) = cur.take() {
                    leaves.push((first, pid));
                    prev_leaf = pid;
                }
                let pid = pool.allocate()?;
                {
                    let mut page = pool.fetch_mut(pid)?;
                    let buf = page.data_mut();
                    init_leaf(buf);
                    set_link2(buf, prev_leaf);
                    let mut p = SlottedPageMut::new(buf, NODE_HDR);
                    p.insert(0, &cell)?;
                }
                if prev_leaf != INVALID_PAGE {
                    let mut pp = pool.fetch_mut(prev_leaf)?;
                    set_link1(pp.data_mut(), pid);
                }
                let sep = match &last_key {
                    Some(prev) => crate::node::shortest_separator(prev, &key),
                    None => key.clone(),
                };
                cur = Some((pid, sep));
                cur_slot = 1;
            }
            last_key = Some(key);
        }
        match cur {
            Some((pid, first)) => leaves.push((first, pid)),
            None => {
                // Empty input: a single empty leaf root.
                let root = pool.allocate()?;
                let mut page = pool.fetch_mut(root)?;
                init_leaf(page.data_mut());
                drop(page);
                return BTree::open(pool, root);
            }
        }

        // ---- internal levels --------------------------------------------
        let mut level: Vec<(Vec<u8>, PageId)> = leaves;
        while level.len() > 1 {
            let mut next: Vec<(Vec<u8>, PageId)> = Vec::new();
            let mut iter = level.into_iter();
            let (mut first_key, leftmost) = iter.next().expect("level non-empty");
            let mut node = pool.allocate()?;
            {
                let mut page = pool.fetch_mut(node)?;
                init_internal(page.data_mut(), leftmost);
            }
            let mut slot: SlotId = 0;
            for (sep, child) in iter {
                let cell = internal_cell(&sep, child);
                let mut page = pool.fetch_mut(node)?;
                let mut p = SlottedPageMut::new(page.data_mut(), NODE_HDR);
                match p.insert(slot, &cell) {
                    Ok(()) => slot += 1,
                    Err(Error::PageOverflow { .. }) => {
                        drop(page);
                        next.push((first_key, node));
                        // The separator that failed becomes the next node's
                        // "first key" and its child the leftmost.
                        node = pool.allocate()?;
                        let mut page = pool.fetch_mut(node)?;
                        init_internal(page.data_mut(), child);
                        first_key = sep;
                        slot = 0;
                    }
                    Err(e) => return Err(e),
                }
            }
            next.push((first_key, node));
            level = next;
        }
        let root = level[0].1;
        BTree::open(pool, root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use vist_storage::MemPager;

    fn pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::with_capacity(MemPager::new(512), 512))
    }

    fn pairs(n: u32) -> Vec<(Vec<u8>, Vec<u8>)> {
        (0..n)
            .map(|i| (format!("key{i:06}").into_bytes(), i.to_le_bytes().to_vec()))
            .collect()
    }

    #[test]
    fn empty_input() {
        let t = BTree::bulk_load(pool(), Vec::new()).unwrap();
        assert_eq!(t.len().unwrap(), 0);
        verify::check(&t).unwrap();
    }

    #[test]
    fn matches_incremental_build() {
        let items = pairs(3000);
        let bulk = BTree::bulk_load(pool(), items.clone()).unwrap();
        verify::check(&bulk).unwrap();
        let incr = BTree::create(pool()).unwrap();
        for (k, v) in &items {
            incr.insert(k, v).unwrap();
        }
        let a: Vec<_> = bulk.scan(..).unwrap().map(|r| r.unwrap()).collect();
        let b: Vec<_> = incr.scan(..).unwrap().map(|r| r.unwrap()).collect();
        assert_eq!(a, b);
        assert_eq!(bulk.len().unwrap(), 3000);
        // Bulk pages are fuller.
        let sb = bulk.tree_stats().unwrap();
        let si = incr.tree_stats().unwrap();
        assert!(
            sb.leaf_pages <= si.leaf_pages,
            "bulk {} vs incremental {}",
            sb.leaf_pages,
            si.leaf_pages
        );
        assert!(sb.utilization() > si.utilization() * 0.99);
    }

    #[test]
    fn remains_fully_dynamic_after_bulk_load() {
        let t = BTree::bulk_load(pool(), pairs(1000)).unwrap();
        // Point reads.
        assert!(t.get(b"key000500").unwrap().is_some());
        assert!(t.get(b"nope").unwrap().is_none());
        // Inserts into packed pages force splits.
        for i in 0..300u32 {
            t.insert(format!("key{i:06}x").as_bytes(), b"new").unwrap();
        }
        // Deletions.
        for i in (0..1000).step_by(2) {
            t.delete(format!("key{i:06}").as_bytes()).unwrap();
        }
        assert_eq!(t.len().unwrap(), 500 + 300);
        verify::check(&t).unwrap();
    }

    #[test]
    fn rejects_disorder_and_duplicates() {
        let items = vec![(b"b".to_vec(), vec![]), (b"a".to_vec(), vec![])];
        assert!(matches!(
            BTree::bulk_load(pool(), items),
            Err(Error::Corrupt(_))
        ));
        let dups = vec![(b"a".to_vec(), vec![]), (b"a".to_vec(), vec![])];
        assert!(matches!(
            BTree::bulk_load(pool(), dups),
            Err(Error::Corrupt(_))
        ));
    }

    #[test]
    fn single_item() {
        let t = BTree::bulk_load(pool(), vec![(b"only".to_vec(), b"v".to_vec())]).unwrap();
        assert_eq!(t.get(b"only").unwrap().as_deref(), Some(&b"v"[..]));
        assert_eq!(t.len().unwrap(), 1);
        verify::check(&t).unwrap();
    }

    #[test]
    fn variable_length_records() {
        let items: Vec<_> = (0..500u32)
            .map(|i| {
                let k = format!("{:04}{}", i, "p".repeat((i % 30) as usize)).into_bytes();
                let v = vec![7u8; (i % 40) as usize];
                (k, v)
            })
            .collect();
        let t = BTree::bulk_load(pool(), items.clone()).unwrap();
        verify::check(&t).unwrap();
        for (k, v) in &items {
            assert_eq!(t.get(k).unwrap().as_deref(), Some(v.as_slice()));
        }
    }
}
