//! Order-preserving key encodings.
//!
//! B+Tree keys compare as raw byte strings, so multi-field keys must be
//! encoded such that byte order equals logical order. Fixed-width big-endian
//! integers have this property; [`KeyWriter`] concatenates them. For a
//! trailing variable-length field (ViST's path prefixes), plain concatenation
//! is order-preserving as long as it is the *last* field — which is how every
//! key in this workspace is laid out (and the D-Ancestor key additionally
//! stores the prefix *length* before the content, matching the paper's
//! ordering: "first by the Symbol, then by the length of the Prefix, and
//! lastly by the content of the Prefix").

/// Incrementally builds a composite key.
#[derive(Default, Debug, Clone)]
pub struct KeyWriter {
    buf: Vec<u8>,
}

impl KeyWriter {
    /// New empty key.
    #[must_use]
    pub fn new() -> Self {
        KeyWriter { buf: Vec::new() }
    }

    /// New empty key with reserved capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        KeyWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Append a `u8`.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Append a big-endian `u16`.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Append a big-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Append a big-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Append a big-endian `u128` (ViST scope labels).
    pub fn u128(&mut self, v: u128) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Append raw bytes (only order-preserving as the final field).
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(v);
        self
    }

    /// Finish, returning the encoded key.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the bytes encoded so far.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

/// Reads fields back out of a composite key.
#[derive(Debug)]
pub struct KeyReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> KeyReader<'a> {
    /// Start reading `buf` from the beginning.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        KeyReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> &'a [u8] {
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        s
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    /// Read a big-endian `u16`.
    pub fn u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take(2).try_into().unwrap())
    }

    /// Read a big-endian `u32`.
    pub fn u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take(4).try_into().unwrap())
    }

    /// Read a big-endian `u64`.
    pub fn u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take(8).try_into().unwrap())
    }

    /// Read a big-endian `u128`.
    pub fn u128(&mut self) -> u128 {
        u128::from_be_bytes(self.take(16).try_into().unwrap())
    }

    /// Remaining unread bytes.
    #[must_use]
    pub fn rest(&self) -> &'a [u8] {
        &self.buf[self.pos..]
    }

    /// Bytes remaining.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// The smallest key strictly greater than every key starting with `prefix`
/// (i.e. the exclusive upper bound of the prefix range), or `None` when
/// `prefix` is all `0xFF` and no such key exists.
#[must_use]
pub fn prefix_upper_bound(prefix: &[u8]) -> Option<Vec<u8>> {
    let mut out = prefix.to_vec();
    while let Some(last) = out.pop() {
        if last < 0xFF {
            out.push(last + 1);
            return Some(out);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_roundtrip() {
        let mut w = KeyWriter::new();
        w.u8(3)
            .u16(777)
            .u32(1 << 30)
            .u64(u64::MAX - 5)
            .u128(1 << 100);
        let key = w.finish();
        let mut r = KeyReader::new(&key);
        assert_eq!(r.u8(), 3);
        assert_eq!(r.u16(), 777);
        assert_eq!(r.u32(), 1 << 30);
        assert_eq!(r.u64(), u64::MAX - 5);
        assert_eq!(r.u128(), 1 << 100);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn big_endian_preserves_order() {
        let enc = |v: u64| {
            let mut w = KeyWriter::new();
            w.u64(v);
            w.finish()
        };
        let mut values = [0u64, 1, 255, 256, 65535, 1 << 32, u64::MAX];
        values.sort_unstable();
        for pair in values.windows(2) {
            assert!(enc(pair[0]) < enc(pair[1]), "{} vs {}", pair[0], pair[1]);
        }
    }

    #[test]
    fn composite_order_major_to_minor() {
        let enc = |a: u32, b: u32| {
            let mut w = KeyWriter::new();
            w.u32(a).u32(b);
            w.finish()
        };
        assert!(enc(1, 999) < enc(2, 0));
        assert!(enc(2, 0) < enc(2, 1));
    }

    #[test]
    fn prefix_upper_bound_basics() {
        assert_eq!(prefix_upper_bound(b"abc"), Some(b"abd".to_vec()));
        assert_eq!(prefix_upper_bound(&[1, 0xFF]), Some(vec![2]));
        assert_eq!(prefix_upper_bound(&[0xFF, 0xFF]), None);
        // Everything with the prefix sorts below the bound; the bound itself
        // does not have the prefix.
        let ub = prefix_upper_bound(b"ab").unwrap();
        assert!(b"ab".as_slice() < ub.as_slice());
        assert!(b"ab\xff\xff\xff".as_slice() < ub.as_slice());
        assert!(!ub.starts_with(b"ab"));
    }

    #[test]
    fn rest_returns_trailing_bytes() {
        let mut w = KeyWriter::new();
        w.u32(9).bytes(b"tail");
        let k = w.finish();
        let mut r = KeyReader::new(&k);
        assert_eq!(r.u32(), 9);
        assert_eq!(r.rest(), b"tail");
    }
}
