//! B+Tree node layout on top of [`vist_storage::SlottedPage`].
//!
//! Every page starts with a fixed node header, followed by a slotted region:
//!
//! ```text
//! +0  u8   kind: 1 = leaf, 2 = internal
//! +1  u32  leaf: next-leaf page id       | internal: leftmost child page id
//! +5  u32  leaf: prev-leaf page id       | internal: unused
//! +9  u8   reserved
//! +10 ...  slotted region
//! ```
//!
//! Leaf cells are `[klen u16][vlen u16][key][value]`. Internal cells are
//! `[klen u16][child u32][key]`; the child of cell *i* holds keys in
//! `[key_i, key_{i+1})`, and the header's leftmost child holds keys below
//! `key_0`. Cells are kept sorted by key; positional slot insertion in the
//! slotted layer keeps the directory sorted for free.

use vist_storage::{PageId, SlotId, SlottedPage, SlottedPageMut, INVALID_PAGE};

/// Bytes reserved at the start of a page for the node header.
pub const NODE_HDR: usize = 10;

const KIND_LEAF: u8 = 1;
const KIND_INTERNAL: u8 = 2;

/// Node type tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Stores key/value records; linked to neighbours.
    Leaf,
    /// Stores separator keys and child pointers.
    Internal,
}

pub(crate) fn kind(buf: &[u8]) -> NodeKind {
    match buf[0] {
        KIND_LEAF => NodeKind::Leaf,
        KIND_INTERNAL => NodeKind::Internal,
        other => panic!("corrupt node: bad kind byte {other}"),
    }
}

pub(crate) fn link1(buf: &[u8]) -> PageId {
    PageId::from_le_bytes(buf[1..5].try_into().unwrap())
}

pub(crate) fn link2(buf: &[u8]) -> PageId {
    PageId::from_le_bytes(buf[5..9].try_into().unwrap())
}

pub(crate) fn set_kind(buf: &mut [u8], k: NodeKind) {
    buf[0] = match k {
        NodeKind::Leaf => KIND_LEAF,
        NodeKind::Internal => KIND_INTERNAL,
    };
}

pub(crate) fn set_link1(buf: &mut [u8], pid: PageId) {
    buf[1..5].copy_from_slice(&pid.to_le_bytes());
}

pub(crate) fn set_link2(buf: &mut [u8], pid: PageId) {
    buf[5..9].copy_from_slice(&pid.to_le_bytes());
}

/// Initialize a page as an empty leaf with no neighbours.
pub(crate) fn init_leaf(buf: &mut [u8]) {
    set_kind(buf, NodeKind::Leaf);
    set_link1(buf, INVALID_PAGE);
    set_link2(buf, INVALID_PAGE);
    SlottedPageMut::init(buf, NODE_HDR);
}

/// Initialize a page as an empty internal node with the given leftmost child.
pub(crate) fn init_internal(buf: &mut [u8], leftmost: PageId) {
    set_kind(buf, NodeKind::Internal);
    set_link1(buf, leftmost);
    set_link2(buf, INVALID_PAGE);
    SlottedPageMut::init(buf, NODE_HDR);
}

/// Encode a leaf cell.
pub(crate) fn leaf_cell(key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut cell = Vec::with_capacity(4 + key.len() + value.len());
    cell.extend_from_slice(&(key.len() as u16).to_le_bytes());
    cell.extend_from_slice(&(value.len() as u16).to_le_bytes());
    cell.extend_from_slice(key);
    cell.extend_from_slice(value);
    cell
}

/// Decode a leaf cell into `(key, value)`.
pub(crate) fn decode_leaf_cell(cell: &[u8]) -> (&[u8], &[u8]) {
    let klen = u16::from_le_bytes(cell[0..2].try_into().unwrap()) as usize;
    let vlen = u16::from_le_bytes(cell[2..4].try_into().unwrap()) as usize;
    (&cell[4..4 + klen], &cell[4 + klen..4 + klen + vlen])
}

/// Encode an internal cell.
pub(crate) fn internal_cell(key: &[u8], child: PageId) -> Vec<u8> {
    let mut cell = Vec::with_capacity(6 + key.len());
    cell.extend_from_slice(&(key.len() as u16).to_le_bytes());
    cell.extend_from_slice(&child.to_le_bytes());
    cell.extend_from_slice(key);
    cell
}

/// Decode an internal cell into `(key, child)`.
pub(crate) fn decode_internal_cell(cell: &[u8]) -> (&[u8], PageId) {
    let klen = u16::from_le_bytes(cell[0..2].try_into().unwrap()) as usize;
    let child = PageId::from_le_bytes(cell[2..6].try_into().unwrap());
    (&cell[6..6 + klen], child)
}

/// Key of the cell at `slot` (works for both node kinds).
pub(crate) fn cell_key(buf: &[u8], node_kind: NodeKind, slot: SlotId) -> &[u8] {
    let page = SlottedPage::new(buf, NODE_HDR);
    let cell = page.cell(slot).expect("slot in range");
    match node_kind {
        NodeKind::Leaf => decode_leaf_cell(cell).0,
        NodeKind::Internal => decode_internal_cell(cell).0,
    }
}

/// Binary search the node's cells. `Ok(i)` if slot `i` has exactly `key`,
/// `Err(i)` with the insertion point otherwise.
pub(crate) fn search(buf: &[u8], key: &[u8]) -> Result<SlotId, SlotId> {
    let k = kind(buf);
    let page = SlottedPage::new(buf, NODE_HDR);
    let n = page.slot_count();
    let (mut lo, mut hi) = (0u32, u32::from(n));
    while lo < hi {
        let mid = (lo + hi) / 2;
        match cell_key(buf, k, mid as SlotId).cmp(key) {
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
            std::cmp::Ordering::Equal => return Ok(mid as SlotId),
        }
    }
    Err(lo as SlotId)
}

/// First slot whose key is strictly greater than `key`. Used for internal
/// routing and separator insertion so that, when lazy deletion has left a
/// stale separator equal to a fresh one, keys route to the *later* (newer)
/// child.
pub(crate) fn upper_bound(buf: &[u8], key: &[u8]) -> SlotId {
    let k = kind(buf);
    let page = SlottedPage::new(buf, NODE_HDR);
    let n = page.slot_count();
    let (mut lo, mut hi) = (0u32, u32::from(n));
    while lo < hi {
        let mid = (lo + hi) / 2;
        if cell_key(buf, k, mid as SlotId) <= key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo as SlotId
}

/// The shortest key `s` with `left_last < s <= right_first` — the classic
/// separator suffix truncation. Internal nodes route correctly with `s` in
/// place of `right_first`, and for long shared-prefix key spaces (ViST's
/// D-Ancestor keys) `s` is dramatically shorter.
pub(crate) fn shortest_separator(left_last: &[u8], right_first: &[u8]) -> Vec<u8> {
    debug_assert!(left_last < right_first);
    // Length of the longest common prefix.
    let lcp = left_last
        .iter()
        .zip(right_first.iter())
        .take_while(|(a, b)| a == b)
        .count();
    // One byte past the common prefix distinguishes them (and exists,
    // because left_last < right_first).
    right_first[..(lcp + 1).min(right_first.len())].to_vec()
}

/// For an internal node, the child page that covers `key` (the last cell with
/// key <= `key`), and the slot index of the cell it came from (`None` =
/// leftmost child).
pub(crate) fn child_for(buf: &[u8], key: &[u8]) -> (Option<SlotId>, PageId) {
    debug_assert_eq!(kind(buf), NodeKind::Internal);
    match upper_bound(buf, key) {
        0 => (None, link1(buf)),
        i => {
            let page = SlottedPage::new(buf, NODE_HDR);
            let (_, child) = decode_internal_cell(page.cell(i - 1).expect("in range"));
            (Some(i - 1), child)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf_page_with(keys: &[&[u8]]) -> Vec<u8> {
        let mut buf = vec![0u8; 1024];
        init_leaf(&mut buf);
        for (i, k) in keys.iter().enumerate() {
            let cell = leaf_cell(k, b"v");
            let mut p = SlottedPageMut::new(&mut buf, NODE_HDR);
            p.insert(i as SlotId, &cell).unwrap();
        }
        buf
    }

    #[test]
    fn leaf_cell_roundtrip() {
        let cell = leaf_cell(b"key", b"value");
        let (k, v) = decode_leaf_cell(&cell);
        assert_eq!((k, v), (&b"key"[..], &b"value"[..]));
        let empty = leaf_cell(b"", b"");
        assert_eq!(decode_leaf_cell(&empty), (&b""[..], &b""[..]));
    }

    #[test]
    fn internal_cell_roundtrip() {
        let cell = internal_cell(b"sep", 42);
        assert_eq!(decode_internal_cell(&cell), (&b"sep"[..], 42));
    }

    #[test]
    fn binary_search_finds_and_inserts() {
        let buf = leaf_page_with(&[b"b", b"d", b"f"]);
        assert_eq!(search(&buf, b"b"), Ok(0));
        assert_eq!(search(&buf, b"d"), Ok(1));
        assert_eq!(search(&buf, b"f"), Ok(2));
        assert_eq!(search(&buf, b"a"), Err(0));
        assert_eq!(search(&buf, b"c"), Err(1));
        assert_eq!(search(&buf, b"e"), Err(2));
        assert_eq!(search(&buf, b"g"), Err(3));
    }

    #[test]
    fn child_routing() {
        let mut buf = vec![0u8; 1024];
        init_internal(&mut buf, 100);
        {
            let mut p = SlottedPageMut::new(&mut buf, NODE_HDR);
            p.insert(0, &internal_cell(b"d", 200)).unwrap();
            p.insert(1, &internal_cell(b"m", 300)).unwrap();
        }
        assert_eq!(child_for(&buf, b"a"), (None, 100));
        assert_eq!(child_for(&buf, b"d"), (Some(0), 200));
        assert_eq!(child_for(&buf, b"k"), (Some(0), 200));
        assert_eq!(child_for(&buf, b"m"), (Some(1), 300));
        assert_eq!(child_for(&buf, b"z"), (Some(1), 300));
    }

    #[test]
    fn shortest_separator_laws() {
        let cases: &[(&[u8], &[u8])] = &[
            (b"apple", b"banana"),
            (b"abc", b"abd"),
            (b"abc", b"abcd"),
            (b"", b"a"),
            (b"a\xff", b"b"),
            (b"same-prefix-aaaa", b"same-prefix-bbbb"),
        ];
        for (l, r) in cases {
            let s = shortest_separator(l, r);
            assert!(*l < s.as_slice(), "{l:?} < {s:?}");
            assert!(s.as_slice() <= *r, "{s:?} <= {r:?}");
            assert!(s.len() <= r.len());
        }
        // The win: long shared prefixes truncate to lcp+1 bytes.
        let s = shortest_separator(b"prefix-prefix-prefix-a", b"prefix-prefix-prefix-b");
        assert_eq!(s, b"prefix-prefix-prefix-b".to_vec());
        let s = shortest_separator(b"aaaa0000", b"ab999999999999");
        assert_eq!(s, b"ab".to_vec());
    }

    #[test]
    fn links_roundtrip() {
        let mut buf = vec![0u8; 256];
        init_leaf(&mut buf);
        assert_eq!(link1(&buf), INVALID_PAGE);
        set_link1(&mut buf, 7);
        set_link2(&mut buf, 9);
        assert_eq!((link1(&buf), link2(&buf)), (7, 9));
        assert_eq!(kind(&buf), NodeKind::Leaf);
    }
}
