//! Structural invariant checker, used by tests and property tests.

use vist_storage::{PageId, Result, SlottedPage, INVALID_PAGE};

use crate::node::{decode_internal_cell, decode_leaf_cell, kind, link1, link2, NodeKind, NODE_HDR};
use crate::tree::BTree;

/// Check every B+Tree invariant, returning a description of the first
/// violation found:
///
/// 1. keys within every node are strictly sorted,
/// 2. every key in a subtree lies within the separator bounds of its parent,
/// 3. all leaves are at the same depth,
/// 4. the doubly-linked leaf chain visits exactly the tree's leaves, in
///    order, with consistent back links.
pub fn check(tree: &BTree) -> Result<()> {
    let mut leaves_in_order: Vec<PageId> = Vec::new();
    let mut leaf_depth: Option<usize> = None;
    check_node(
        tree,
        tree.root_page(),
        None,
        None,
        0,
        &mut leaf_depth,
        &mut leaves_in_order,
    )?;

    // Walk the chain from the leftmost leaf; it must equal the in-order leaf
    // list, with consistent prev pointers.
    let mut chain = Vec::new();
    let mut pid = *leaves_in_order.first().expect("at least the root leaf");
    let mut prev = INVALID_PAGE;
    while pid != INVALID_PAGE {
        let page = tree.pool().fetch(pid)?;
        let buf = page.data();
        if kind(buf) != NodeKind::Leaf {
            return corrupt(format!("leaf chain reached non-leaf page {pid}"));
        }
        if link2(buf) != prev {
            return corrupt(format!(
                "leaf {pid} back link {} != expected {prev}",
                link2(buf)
            ));
        }
        chain.push(pid);
        prev = pid;
        pid = link1(buf);
    }
    if chain != leaves_in_order {
        return corrupt(format!(
            "leaf chain {chain:?} != in-order leaves {leaves_in_order:?}"
        ));
    }
    Ok(())
}

fn corrupt(msg: String) -> Result<()> {
    Err(vist_storage::Error::Corrupt(msg))
}

#[allow(clippy::too_many_arguments)]
fn check_node(
    tree: &BTree,
    pid: PageId,
    lower: Option<&[u8]>,
    upper: Option<&[u8]>,
    depth: usize,
    leaf_depth: &mut Option<usize>,
    leaves: &mut Vec<PageId>,
) -> Result<()> {
    let page = tree.pool().fetch(pid)?;
    let buf = page.data();
    let node_kind = kind(buf);
    let p = SlottedPage::new(buf, NODE_HDR);
    let n = p.slot_count();

    // Collect keys and check sortedness + bounds.
    let mut prev_key: Option<Vec<u8>> = None;
    let mut cells: Vec<(Vec<u8>, PageId)> = Vec::new();
    for i in 0..n {
        let cell = p.cell(i)?;
        let key = match node_kind {
            NodeKind::Leaf => decode_leaf_cell(cell).0.to_vec(),
            NodeKind::Internal => {
                let (k, c) = decode_internal_cell(cell);
                cells.push((k.to_vec(), c));
                k.to_vec()
            }
        };
        if let Some(pk) = &prev_key {
            // Internal nodes may carry equal separators after lazy deletion;
            // leaves must be strictly sorted.
            let ok = match node_kind {
                NodeKind::Leaf => pk.as_slice() < key.as_slice(),
                NodeKind::Internal => pk.as_slice() <= key.as_slice(),
            };
            if !ok {
                return corrupt(format!("page {pid}: keys out of order at slot {i}"));
            }
        }
        if let Some(lo) = lower {
            if key.as_slice() < lo {
                return corrupt(format!("page {pid}: key below lower bound at slot {i}"));
            }
        }
        if let Some(hi) = upper {
            if key.as_slice() >= hi {
                return corrupt(format!("page {pid}: key >= upper bound at slot {i}"));
            }
        }
        prev_key = Some(key);
    }

    match node_kind {
        NodeKind::Leaf => {
            match leaf_depth {
                None => *leaf_depth = Some(depth),
                Some(d) if *d != depth => {
                    return corrupt(format!("leaf {pid} at depth {depth}, expected {d}"));
                }
                _ => {}
            }
            leaves.push(pid);
            Ok(())
        }
        NodeKind::Internal => {
            // Leftmost child covers [lower, key_0); cell i covers
            // [key_i, key_{i+1}).
            let first_key = cells.first().map(|(k, _)| k.clone());
            check_node(
                tree,
                link1(buf),
                lower,
                first_key.as_deref().or(upper),
                depth + 1,
                leaf_depth,
                leaves,
            )?;
            for (i, (k, c)) in cells.iter().enumerate() {
                let next_upper = cells.get(i + 1).map(|(k, _)| k.as_slice()).or(upper);
                check_node(tree, *c, Some(k), next_upper, depth + 1, leaf_depth, leaves)?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vist_storage::{BufferPool, MemPager};

    #[test]
    fn empty_tree_passes() {
        let pool = Arc::new(BufferPool::with_capacity(MemPager::new(512), 16));
        let t = BTree::create(pool).unwrap();
        check(&t).unwrap();
    }

    #[test]
    fn verify_catches_planted_corruption() {
        let pool = Arc::new(BufferPool::with_capacity(MemPager::new(512), 64));
        let t = BTree::create(Arc::clone(&pool)).unwrap();
        for i in 0..50u32 {
            t.insert(format!("k{i:03}").as_bytes(), b"v").unwrap();
        }
        check(&t).unwrap();
        // Corrupt a key in the leftmost leaf to break ordering.
        let leaf = {
            let mut pid = t.root_page();
            loop {
                let p = pool.fetch(pid).unwrap();
                let b = p.data();
                if crate::node::kind(b) == NodeKind::Leaf {
                    break pid;
                }
                pid = crate::node::link1(b);
            }
        };
        let mut page = pool.fetch_mut(leaf).unwrap();
        let buf = page.data_mut();
        // Overwrite the first cell's key bytes with 0xFF to break sortedness.
        let cell0 = {
            let p = SlottedPage::new(buf, NODE_HDR);
            p.cell(0).unwrap().to_vec()
        };
        let mut broken = cell0.clone();
        let klen = u16::from_le_bytes([broken[0], broken[1]]) as usize;
        for b in &mut broken[4..4 + klen] {
            *b = 0xFF;
        }
        let mut p = vist_storage::SlottedPageMut::new(buf, NODE_HDR);
        p.replace(0, &broken).unwrap();
        drop(page);
        assert!(check(&t).is_err(), "corruption must be detected");
    }
}
