//! Disk-based B+Tree with variable-length byte-string keys and values.
//!
//! The ViST paper implements its three index trees (D-Ancestor, S-Ancestor,
//! DocId) "using the B+ Tree API provided by the Berkeley DB library". This
//! crate is the from-scratch replacement: a paged B+Tree over
//! [`vist_storage::BufferPool`] with
//!
//! * variable-length keys and values in slotted pages,
//! * ordered range scans through a doubly-linked leaf chain,
//! * insert-or-replace, exact lookup, and delete,
//! * PostgreSQL-style *lazy deletion* (empty pages are unlinked and freed;
//!   under-full pages are left in place rather than merged — the classic
//!   trade-off that keeps variable-length-key deletion simple and fast),
//! * many trees sharing one pager/pool, as ViST needs ("the combined
//!   D-Ancestor and S-Ancestor B+ Trees" plus the DocId tree live in one
//!   store), and
//! * order-preserving key codecs ([`codec`]) so composite integer keys
//!   compare correctly as raw bytes.
//!
//! Keys are compared lexicographically as byte strings; encode multi-field
//! keys with [`codec::KeyWriter`].
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use vist_storage::{BufferPool, MemPager};
//! use vist_btree::BTree;
//!
//! let pool = Arc::new(BufferPool::with_capacity(MemPager::new(4096), 64));
//! let mut tree = BTree::create(Arc::clone(&pool)).unwrap();
//! tree.insert(b"purchase", b"1").unwrap();
//! tree.insert(b"seller", b"2").unwrap();
//! assert_eq!(tree.get(b"seller").unwrap().as_deref(), Some(&b"2"[..]));
//! let all: Vec<_> = tree.scan(..).unwrap().collect::<Result<_, _>>().unwrap();
//! assert_eq!(all.len(), 2);
//! ```

mod bulk;
pub mod codec;
mod cursor;
mod node;
mod segment;
mod stats;
mod tree;
#[doc(hidden)]
pub mod verify;

pub use cursor::Scan;
pub use segment::{SegmentReader, SegmentWriter};
pub use stats::TreeStats;
pub use tree::BTree;
pub use vist_storage::{Error, Result};

/// Register this crate's observability metrics with the global
/// `vist-obs` registry so they appear in expositions even before the
/// code paths that record them have run. Idempotent; called by
/// [`BTree::create`] and [`BTree::open`].
pub fn register_metrics() {
    let _ = vist_obs::counter!("vist_btree_get_total");
    let _ = vist_obs::counter!("vist_btree_insert_total");
    let _ = vist_obs::counter!("vist_btree_delete_total");
    let _ = vist_obs::counter!("vist_btree_leaf_chase_total");
    let _ = vist_obs::gauge!("vist_btree_depth");
    let _ = vist_obs::histogram!("vist_btree_probe_depth");
    let _ = vist_obs::histogram!("vist_btree_scan_len");
}
