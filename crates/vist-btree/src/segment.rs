//! Immutable packed segments: several bulk-loaded trees in one store file.
//!
//! A *segment* is the read-only half of the tiered index: all trees of one
//! ingest batch (D-Ancestor, S-Ancestor, DocId, stored documents), each
//! bulk-loaded at ~100% leaf fill with fence-key internal levels, packed
//! into a single pager file together with a small header page naming the
//! tree roots. Segments are written once, fsync'd, and never mutated; the
//! page-level CRC32C trailers of the underlying pager checksum every page.
//!
//! [`SegmentWriter`] packs a fresh pool: the **first** allocation becomes
//! the header page (page 1 on a fresh `FilePager`, right after the pager's
//! own header), then each [`SegmentWriter::add_tree`] bulk-loads one tree
//! from a sorted stream. [`SegmentWriter::finish`] writes the header page:
//!
//! ```text
//! magic "VISTSEG1" | version u16 | tree_count u16 |
//! (root u32, entries u64) × tree_count | meta_len u16 | meta bytes
//! ```
//!
//! [`SegmentReader`] validates the header and reopens each tree with
//! [`BTree::open`], so the whole cursor API ([`BTree::scan`],
//! [`BTree::for_each_in`], …) works on segment trees unchanged. Readers
//! must treat segment trees as immutable — nothing enforces it at the type
//! level, but the tiered index never routes writes at them.

use std::sync::Arc;

use vist_storage::{BufferPool, Error, PageId, Result};

use crate::tree::BTree;

const MAGIC: &[u8; 8] = b"VISTSEG1";
const VERSION: u16 = 1;

/// Fixed header bytes before the per-tree table: magic + version + count.
const HDR_FIXED: usize = 8 + 2 + 2;
/// Bytes per tree table entry: root u32 + entries u64.
const TREE_ENTRY: usize = 4 + 8;

/// Builds one immutable segment into a fresh pool. See the module docs.
pub struct SegmentWriter {
    pool: Arc<BufferPool>,
    header: PageId,
    trees: Vec<(PageId, u64)>,
}

impl SegmentWriter {
    /// Reserve the header page in `pool`. Call on a **fresh** pool so the
    /// header lands on the pool's first page id; persist
    /// [`SegmentWriter::header_page`] (or rely on it being page 1 on a
    /// fresh `FilePager`).
    pub fn create(pool: Arc<BufferPool>) -> Result<Self> {
        let header = pool.allocate()?;
        {
            // Zero magic until `finish`: a crash mid-build leaves a file
            // that SegmentReader::open rejects instead of half-trusting.
            let mut page = pool.fetch_mut(header)?;
            page.data_mut()[..8].fill(0);
        }
        Ok(SegmentWriter {
            pool,
            header,
            trees: Vec::new(),
        })
    }

    /// The page id the header will be written to.
    #[must_use]
    pub fn header_page(&self) -> PageId {
        self.header
    }

    /// Bulk-load the next tree from a strictly ascending `(key, value)`
    /// stream (see [`BTree::bulk_load`]) and record it in the header
    /// table. Returns the tree's slot index.
    pub fn add_tree<I>(&mut self, items: I) -> Result<usize>
    where
        I: IntoIterator<Item = (Vec<u8>, Vec<u8>)>,
    {
        let mut entries = 0u64;
        let counted = items.into_iter().inspect(|_| entries += 1);
        let tree = BTree::bulk_load(Arc::clone(&self.pool), counted)?;
        self.trees.push((tree.root_page(), entries));
        Ok(self.trees.len() - 1)
    }

    /// Write the header page (tree table + caller `meta` blob) and
    /// dissolve the writer. Durability is the caller's: flush the pool /
    /// checkpoint the pager after `finish` returns.
    pub fn finish(self, meta: &[u8]) -> Result<()> {
        let need = HDR_FIXED + self.trees.len() * TREE_ENTRY + 2 + meta.len();
        let page_size = self.pool.page_size();
        if need > page_size || self.trees.len() > u16::MAX as usize {
            return Err(Error::PageOverflow {
                requested: need,
                available: page_size,
            });
        }
        let mut page = self.pool.fetch_mut(self.header)?;
        let buf = page.data_mut();
        buf[0..8].copy_from_slice(MAGIC);
        buf[8..10].copy_from_slice(&VERSION.to_le_bytes());
        buf[10..12].copy_from_slice(&(self.trees.len() as u16).to_le_bytes());
        let mut at = HDR_FIXED;
        for (root, entries) in &self.trees {
            buf[at..at + 4].copy_from_slice(&root.to_le_bytes());
            buf[at + 4..at + 12].copy_from_slice(&entries.to_le_bytes());
            at += TREE_ENTRY;
        }
        buf[at..at + 2].copy_from_slice(&(meta.len() as u16).to_le_bytes());
        buf[at + 2..at + 2 + meta.len()].copy_from_slice(meta);
        Ok(())
    }
}

/// Read side of a packed segment: validates the header page and hands out
/// the packed trees through the ordinary [`BTree`] API.
pub struct SegmentReader {
    pool: Arc<BufferPool>,
    trees: Vec<(PageId, u64)>,
    meta: Vec<u8>,
}

impl SegmentReader {
    /// Open the segment whose header is at `header` in `pool`.
    pub fn open(pool: Arc<BufferPool>, header: PageId) -> Result<Self> {
        let (trees, meta) = {
            let page = pool.fetch(header)?;
            let buf = page.data();
            if &buf[0..8] != MAGIC {
                return Err(Error::BadMagic {
                    what: "segment header",
                });
            }
            let version = u16::from_le_bytes(buf[8..10].try_into().unwrap());
            if version != VERSION {
                return Err(Error::Corrupt(format!(
                    "segment header version {version} (expected {VERSION})"
                )));
            }
            let count = u16::from_le_bytes(buf[10..12].try_into().unwrap()) as usize;
            let table_end = HDR_FIXED + count * TREE_ENTRY;
            if table_end + 2 > buf.len() {
                return Err(Error::Corrupt(format!(
                    "segment header lists {count} trees, larger than a page"
                )));
            }
            let trees: Vec<(PageId, u64)> = (0..count)
                .map(|i| {
                    let at = HDR_FIXED + i * TREE_ENTRY;
                    (
                        u32::from_le_bytes(buf[at..at + 4].try_into().unwrap()),
                        u64::from_le_bytes(buf[at + 4..at + 12].try_into().unwrap()),
                    )
                })
                .collect();
            let meta_len = u16::from_le_bytes(buf[table_end..table_end + 2].try_into().unwrap());
            let meta_at = table_end + 2;
            if meta_at + meta_len as usize > buf.len() {
                return Err(Error::Corrupt("segment header meta overruns page".into()));
            }
            (trees, buf[meta_at..meta_at + meta_len as usize].to_vec())
        };
        Ok(SegmentReader { pool, trees, meta })
    }

    /// Number of packed trees.
    #[must_use]
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    /// Entries recorded for tree `i` at write time.
    #[must_use]
    pub fn entries(&self, i: usize) -> u64 {
        self.trees[i].1
    }

    /// The caller meta blob passed to [`SegmentWriter::finish`].
    #[must_use]
    pub fn meta(&self) -> &[u8] {
        &self.meta
    }

    /// The shared pool the segment's pages live in.
    #[must_use]
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Open packed tree `i`. The returned tree must be treated as
    /// read-only.
    pub fn tree(&self, i: usize) -> Result<BTree> {
        let Some(&(root, _)) = self.trees.get(i) else {
            return Err(Error::Corrupt(format!(
                "segment has {} trees, asked for {i}",
                self.trees.len()
            )));
        };
        BTree::open(Arc::clone(&self.pool), root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vist_storage::MemPager;

    fn items(n: u32, tag: char) -> Vec<(Vec<u8>, Vec<u8>)> {
        (0..n)
            .map(|i| {
                (
                    format!("k{tag}{i:06}").into_bytes(),
                    format!("v{i}").into_bytes(),
                )
            })
            .collect()
    }

    #[test]
    fn write_then_read_three_trees() {
        let pool = Arc::new(BufferPool::with_capacity(MemPager::new(512), 256));
        let mut w = SegmentWriter::create(Arc::clone(&pool)).unwrap();
        let header = w.header_page();
        assert_eq!(w.add_tree(items(500, 'a')).unwrap(), 0);
        assert_eq!(w.add_tree(items(10, 'b')).unwrap(), 1);
        assert_eq!(w.add_tree(Vec::new()).unwrap(), 2);
        w.finish(b"doc_count=3").unwrap();

        let r = SegmentReader::open(pool, header).unwrap();
        assert_eq!(r.tree_count(), 3);
        assert_eq!(r.entries(0), 500);
        assert_eq!(r.entries(1), 10);
        assert_eq!(r.entries(2), 0);
        assert_eq!(r.meta(), b"doc_count=3");

        let t0 = r.tree(0).unwrap();
        assert_eq!(t0.get(b"ka000123").unwrap().unwrap(), b"v123");
        assert_eq!(t0.len().unwrap(), 500);
        assert!(t0.tree_stats().unwrap().leaf_fill() > 0.85, "packed leaves");
        let t2 = r.tree(2).unwrap();
        assert!(t2.is_empty().unwrap());
        assert!(r.tree(3).is_err());
    }

    #[test]
    fn unfinished_segment_is_rejected() {
        let pool = Arc::new(BufferPool::with_capacity(MemPager::new(512), 64));
        let w = SegmentWriter::create(Arc::clone(&pool)).unwrap();
        let header = w.header_page();
        drop(w); // crash before finish: header magic never written
        assert!(matches!(
            SegmentReader::open(pool, header),
            Err(Error::BadMagic { .. })
        ));
    }

    #[test]
    fn cursors_work_on_packed_trees() {
        let pool = Arc::new(BufferPool::with_capacity(MemPager::new(512), 256));
        let mut w = SegmentWriter::create(Arc::clone(&pool)).unwrap();
        let header = w.header_page();
        w.add_tree(items(200, 'x')).unwrap();
        w.finish(&[]).unwrap();
        let r = SegmentReader::open(pool, header).unwrap();
        let t = r.tree(0).unwrap();
        let hits: Vec<_> = t
            .scan_prefix(b"kx0001")
            .unwrap()
            .collect::<Result<Vec<_>>>()
            .unwrap();
        assert_eq!(hits.len(), 100);
        let mut seen = 0;
        t.for_each_in(.., |_, _| {
            seen += 1;
            std::ops::ControlFlow::<()>::Continue(())
        })
        .unwrap();
        assert_eq!(seen, 200);
    }
}
