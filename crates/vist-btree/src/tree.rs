//! B+Tree insert / lookup / delete.
//!
//! # Concurrency
//!
//! Reads (`get`, `contains`, `len`, cursors) take `&self` and are safe to
//! run from many threads at once: each page access goes through the buffer
//! pool's per-frame `RwLock`, and the root page id is an atomic. Mutations
//! also take `&self` but serialize on an internal per-tree writer mutex, so
//! there is at most one writer at any time (single-writer / multi-reader).
//!
//! `insert` is additionally safe to run *concurrently with readers*: it
//! only allocates and splits pages, new pages are fully initialized before
//! they become reachable, and the root pointer is published with `Release`
//! ordering only after the new root page is complete. A split moves the
//! upper half of a node to its right sibling before the parent learns the
//! separator, so a reader descending through the stale ancestor can land
//! left of a committed key; `get` recovers by chasing the leaf-level
//! forward link (B-link style) whenever the key lies beyond the leaf it
//! reached. A reader racing an insert may therefore miss only the one
//! key whose insert has not yet returned — never an already-committed
//! key, and never a torn or uninitialized page. `delete` frees pages and
//! is **not** safe against concurrent readers of the same tree — callers
//! must exclude readers for the duration (see `docs/CONCURRENCY.md`;
//! `vist-core` does this with a maintenance lock).

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use vist_storage::sync::Mutex;
use vist_storage::{
    BufferPool, Error, PageId, Result, SlotId, SlottedPage, SlottedPageMut, INVALID_PAGE,
};

use crate::node::{
    child_for, decode_internal_cell, decode_leaf_cell, init_internal, init_leaf, internal_cell,
    kind, leaf_cell, link1, link2, search, set_link1, set_link2, upper_bound, NodeKind, NODE_HDR,
};

/// A B+Tree over a shared [`BufferPool`].
///
/// Multiple trees may share one pool (ViST keeps its D-Ancestor/S-Ancestor
/// and DocId trees in a single store). The root page id changes as the tree
/// grows or shrinks; persist [`BTree::root_page`] and reopen with
/// [`BTree::open`].
pub struct BTree {
    pool: Arc<BufferPool>,
    /// Current root page id; readers load it with `Acquire`, the writer
    /// publishes a fully-built new root with `Release`.
    root: AtomicU32,
    /// Serializes `insert`/`delete`; never held by readers.
    writer: Mutex<()>,
    max_cell: usize,
}

impl BTree {
    pub(crate) fn max_cell_for(pool: &BufferPool) -> usize {
        let usable = pool.page_size() - NODE_HDR - 6;
        usable / 2 - 4
    }

    /// Create a fresh empty tree in `pool`.
    pub fn create(pool: Arc<BufferPool>) -> Result<Self> {
        crate::register_metrics();
        let root = pool.allocate()?;
        {
            let mut page = pool.fetch_mut(root)?;
            init_leaf(page.data_mut());
        }
        let max_cell = Self::max_cell_for(&pool);
        Ok(BTree {
            pool,
            root: AtomicU32::new(root),
            writer: Mutex::new(()),
            max_cell,
        })
    }

    /// Reopen a tree whose root page id was persisted earlier.
    pub fn open(pool: Arc<BufferPool>, root: PageId) -> Result<Self> {
        crate::register_metrics();
        let max_cell = Self::max_cell_for(&pool);
        Ok(BTree {
            pool,
            root: AtomicU32::new(root),
            writer: Mutex::new(()),
            max_cell,
        })
    }

    /// Current root page id (persist this to reopen the tree).
    #[must_use]
    pub fn root_page(&self) -> PageId {
        self.root.load(Ordering::Acquire)
    }

    /// The buffer pool this tree lives in.
    #[must_use]
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Largest `key.len() + value.len()` this tree accepts.
    #[must_use]
    pub fn max_record(&self) -> usize {
        self.max_cell - 4
    }

    /// [`BTree::max_record`] for a tree that would live in `pool`, without
    /// creating one — bulk loaders size their records with this.
    #[must_use]
    pub fn max_record_for(pool: &BufferPool) -> usize {
        Self::max_cell_for(pool) - 4
    }

    /// Walk the whole tree checking structural invariants (key order, node
    /// bounds, uniform depth, leaf chain). Used by `vist check` after a
    /// crash recovery; see [`crate::verify::check`].
    pub fn verify(&self) -> Result<()> {
        crate::verify::check(self)
    }

    /// Exact lookup.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        vist_obs::counter!("vist_btree_get_total").inc();
        let mut depth = 0u64;
        let probe_depth = vist_obs::histogram!("vist_btree_probe_depth");
        let mut pid = self.root_page();
        loop {
            let page = self.pool.fetch(pid)?;
            let buf = page.data();
            depth += 1;
            match kind(buf) {
                NodeKind::Internal => {
                    let (_, child) = child_for(buf, key);
                    pid = child;
                }
                NodeKind::Leaf => match search(buf, key) {
                    Ok(slot) => {
                        let p = SlottedPage::new(buf, NODE_HDR);
                        let (_, v) = decode_leaf_cell(p.cell(slot)?);
                        probe_depth.record(depth);
                        vist_obs::gauge!("vist_btree_depth").set(depth as i64);
                        return Ok(Some(v.to_vec()));
                    }
                    Err(_) => {
                        // B-link chase: a concurrent split moves the upper
                        // half of a node to its new right sibling *before*
                        // the parent (or, for a root split, the root
                        // pointer) learns the separator, so a descent
                        // through the stale ancestor can land one or more
                        // leaves too far left. If the key is beyond every
                        // record here and a right sibling exists, the key —
                        // if committed — can only live to the right.
                        let next = link1(buf);
                        if next != INVALID_PAGE {
                            let p = SlottedPage::new(buf, NODE_HDR);
                            let n = p.slot_count();
                            let beyond = n == 0 || {
                                let (last, _) = decode_leaf_cell(p.cell(n - 1)?);
                                key > last
                            };
                            if beyond {
                                vist_obs::counter!("vist_btree_leaf_chase_total").inc();
                                pid = next;
                                continue;
                            }
                        }
                        probe_depth.record(depth);
                        return Ok(None);
                    }
                },
            }
        }
    }

    /// `true` if `key` is present.
    pub fn contains(&self, key: &[u8]) -> Result<bool> {
        Ok(self.get(key)?.is_some())
    }

    /// Insert or replace. Returns the previous value, if any.
    ///
    /// Takes the tree's internal writer lock; safe to call concurrently
    /// with readers and with other writers (which serialize).
    pub fn insert(&self, key: &[u8], value: &[u8]) -> Result<Option<Vec<u8>>> {
        vist_obs::counter!("vist_btree_insert_total").inc();
        let _w = self.writer.lock();
        let cell_len = 4 + key.len() + value.len();
        if cell_len > self.max_cell {
            return Err(Error::PageOverflow {
                requested: cell_len,
                available: self.max_cell,
            });
        }
        let root = self.root_page();
        let (old, split) = self.insert_rec(root, key, value)?;
        if let Some((sep, right)) = split {
            let new_root = self.pool.allocate()?;
            let mut page = self.pool.fetch_mut(new_root)?;
            init_internal(page.data_mut(), root);
            let cell = internal_cell(&sep, right);
            SlottedPageMut::new(page.data_mut(), NODE_HDR).insert(0, &cell)?;
            drop(page);
            // Publish only after the page is fully written: a reader that
            // loads the new root must find a complete node.
            self.root.store(new_root, Ordering::Release);
        }
        Ok(old)
    }

    fn insert_rec(&self, pid: PageId, key: &[u8], value: &[u8]) -> Result<InsertOutcome> {
        let node_kind = {
            let page = self.pool.fetch(pid)?;
            kind(page.data())
        };
        match node_kind {
            NodeKind::Leaf => self.insert_leaf(pid, key, value),
            NodeKind::Internal => {
                let child = {
                    let page = self.pool.fetch(pid)?;
                    child_for(page.data(), key).1
                };
                let (old, split) = self.insert_rec(child, key, value)?;
                let Some((sep, right)) = split else {
                    return Ok((old, None));
                };
                let up = self.insert_internal_cell(pid, &sep, right)?;
                Ok((old, up))
            }
        }
    }

    fn insert_leaf(&self, pid: PageId, key: &[u8], value: &[u8]) -> Result<InsertOutcome> {
        let mut page = self.pool.fetch_mut(pid)?;
        let buf = page.data_mut();
        let (slot, old) = match search(buf, key) {
            Ok(i) => {
                let old = {
                    let p = SlottedPage::new(buf, NODE_HDR);
                    decode_leaf_cell(p.cell(i)?).1.to_vec()
                };
                SlottedPageMut::new(buf, NODE_HDR).remove(i)?;
                (i, Some(old))
            }
            Err(i) => (i, None),
        };
        let cell = leaf_cell(key, value);
        match SlottedPageMut::new(buf, NODE_HDR).insert(slot, &cell) {
            Ok(()) => Ok((old, None)),
            Err(Error::PageOverflow { .. }) => {
                let split = self.split_leaf(page, slot, key, value)?;
                Ok((old, Some(split)))
            }
            Err(e) => Err(e),
        }
    }

    /// Split a full leaf, inserting `(key, value)` at positional `slot`.
    ///
    /// Ordering matters for concurrent readers: the right sibling is fully
    /// built *before* the left node's forward link is pointed at it, so a
    /// leaf-chain scan can never reach an uninitialized page.
    fn split_leaf(
        &self,
        mut page: vist_storage::PageRefMut,
        slot: SlotId,
        key: &[u8],
        value: &[u8],
    ) -> Result<(Vec<u8>, PageId)> {
        let left_pid = page.id();
        // Collect all records plus the new one, in key order.
        let mut records: Vec<(Vec<u8>, Vec<u8>)> = {
            let buf = page.data();
            let p = SlottedPage::new(buf, NODE_HDR);
            (0..p.slot_count())
                .map(|i| {
                    let (k, v) = decode_leaf_cell(p.cell(i).expect("in range"));
                    (k.to_vec(), v.to_vec())
                })
                .collect()
        };
        records.insert(slot as usize, (key.to_vec(), value.to_vec()));
        // Split point: first index where the left half reaches half the bytes.
        let total: usize = records.iter().map(|(k, v)| 4 + k.len() + v.len()).sum();
        let mut acc = 0usize;
        let mut split_at = records.len() - 1;
        for (i, (k, v)) in records.iter().enumerate() {
            acc += 4 + k.len() + v.len();
            if acc * 2 >= total && i + 1 < records.len() {
                split_at = i + 1;
                break;
            }
        }
        let split_at = split_at.clamp(1, records.len() - 1);
        let right_records = records.split_off(split_at);
        // Suffix-truncated separator: shortest key separating the halves.
        let sep = crate::node::shortest_separator(
            &records.last().expect("left non-empty").0,
            &right_records[0].0,
        );

        let right_pid = self.pool.allocate()?;
        let old_next = link1(page.data());
        let old_prev = link2(page.data());
        // Build the right node first, while the left node (still holding its
        // write guard) continues to show the pre-split record set.
        {
            let mut rp = self.pool.fetch_mut(right_pid)?;
            let buf = rp.data_mut();
            init_leaf(buf);
            set_link1(buf, old_next);
            set_link2(buf, left_pid);
            let mut p = SlottedPageMut::new(buf, NODE_HDR);
            for (i, (k, v)) in right_records.iter().enumerate() {
                p.insert(i as SlotId, &leaf_cell(k, v))?;
            }
        }
        // Now rewrite the left node to its half and link it forward.
        {
            let buf = page.data_mut();
            init_leaf(buf);
            set_link1(buf, right_pid);
            set_link2(buf, old_prev);
            let mut p = SlottedPageMut::new(buf, NODE_HDR);
            for (i, (k, v)) in records.iter().enumerate() {
                p.insert(i as SlotId, &leaf_cell(k, v))?;
            }
        }
        drop(page);
        // Fix the back link of the following leaf.
        if old_next != INVALID_PAGE {
            let mut np = self.pool.fetch_mut(old_next)?;
            set_link2(np.data_mut(), right_pid);
        }
        Ok((sep, right_pid))
    }

    /// Insert a separator cell into an internal node, splitting it if full.
    /// Separators are inserted *after* any equal key so that routing by
    /// "last cell with key <= target" always reaches the newer (right) child.
    fn insert_internal_cell(
        &self,
        pid: PageId,
        sep: &[u8],
        child: PageId,
    ) -> Result<Option<(Vec<u8>, PageId)>> {
        let mut page = self.pool.fetch_mut(pid)?;
        let buf = page.data_mut();
        let slot = upper_bound(buf, sep);
        let cell = internal_cell(sep, child);
        match SlottedPageMut::new(buf, NODE_HDR).insert(slot, &cell) {
            Ok(()) => Ok(None),
            Err(Error::PageOverflow { .. }) => {
                Ok(Some(self.split_internal(page, slot, sep, child)?))
            }
            Err(e) => Err(e),
        }
    }

    fn split_internal(
        &self,
        mut page: vist_storage::PageRefMut,
        slot: SlotId,
        sep: &[u8],
        child: PageId,
    ) -> Result<(Vec<u8>, PageId)> {
        let mut cells: Vec<(Vec<u8>, PageId)> = {
            let buf = page.data();
            let p = SlottedPage::new(buf, NODE_HDR);
            (0..p.slot_count())
                .map(|i| {
                    let (k, c) = decode_internal_cell(p.cell(i).expect("in range"));
                    (k.to_vec(), c)
                })
                .collect()
        };
        cells.insert(slot as usize, (sep.to_vec(), child));
        // The middle cell's key moves up; its child becomes the right node's
        // leftmost child.
        let total: usize = cells.iter().map(|(k, _)| 6 + k.len()).sum();
        let mut acc = 0usize;
        let mut mid = cells.len() / 2;
        for (i, (k, _)) in cells.iter().enumerate() {
            acc += 6 + k.len();
            if acc * 2 >= total {
                mid = i;
                break;
            }
        }
        let mid = mid.clamp(1, cells.len() - 2);
        let right_cells = cells.split_off(mid + 1);
        let (up_key, right_leftmost) = cells.pop().expect("mid >= 1");

        let leftmost = link1(page.data());
        let right_pid = self.pool.allocate()?;
        // Right node first (see `split_leaf` for the reader-safety argument).
        {
            let mut rp = self.pool.fetch_mut(right_pid)?;
            let buf = rp.data_mut();
            init_internal(buf, right_leftmost);
            let mut p = SlottedPageMut::new(buf, NODE_HDR);
            for (i, (k, c)) in right_cells.iter().enumerate() {
                p.insert(i as SlotId, &internal_cell(k, *c))?;
            }
        }
        {
            let buf = page.data_mut();
            init_internal(buf, leftmost);
            let mut p = SlottedPageMut::new(buf, NODE_HDR);
            for (i, (k, c)) in cells.iter().enumerate() {
                p.insert(i as SlotId, &internal_cell(k, *c))?;
            }
        }
        drop(page);
        Ok((up_key, right_pid))
    }

    /// Delete `key`. Returns the removed value, if the key was present.
    ///
    /// Deletion is *lazy* in the PostgreSQL style: pages are only reclaimed
    /// when they become completely empty, in which case they are unlinked
    /// from the leaf chain, their parent reference is removed, and the root
    /// collapses when it has a single child.
    ///
    /// Takes the tree's internal writer lock. Unlike `insert`, delete frees
    /// pages and is therefore **not** safe to run concurrently with readers
    /// of the same tree; callers must exclude readers for its duration.
    pub fn delete(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        vist_obs::counter!("vist_btree_delete_total").inc();
        let _w = self.writer.lock();
        let root = self.root_page();
        let (old, emptied) = self.delete_rec(root, key)?;
        if emptied {
            // The root lost everything. An empty leaf root is fine as-is; an
            // internal root whose leftmost child was freed must be reset to
            // an empty leaf (its child pointer dangles).
            let mut page = self.pool.fetch_mut(root)?;
            if kind(page.data()) == NodeKind::Internal {
                init_leaf(page.data_mut());
            }
            return Ok(old);
        }
        // Collapse a chain of single-child internal roots.
        let mut root = root;
        loop {
            let page = self.pool.fetch(root)?;
            let buf = page.data();
            if kind(buf) != NodeKind::Internal {
                break;
            }
            let p = SlottedPage::new(buf, NODE_HDR);
            if p.slot_count() != 0 {
                break;
            }
            let new_root = link1(buf);
            drop(page);
            self.root.store(new_root, Ordering::Release);
            self.pool.free(root)?;
            root = new_root;
        }
        Ok(old)
    }

    /// Free **every** page of this tree back to the pool, consuming it.
    ///
    /// Used when a bulk-loaded tree replaces an existing one (the old
    /// tree's pages must return to the free list, not leak) and when the
    /// tiered index truncates its delta after folding it into a segment.
    ///
    /// Like [`BTree::delete`], freeing pages is **not** safe against
    /// concurrent readers of the same tree; callers must exclude readers
    /// for the duration.
    pub fn destroy(self) -> Result<()> {
        let _w = self.writer.lock();
        let mut stack = vec![self.root.load(Ordering::Acquire)];
        while let Some(pid) = stack.pop() {
            {
                let page = self.pool.fetch(pid)?;
                let buf = page.data();
                if kind(buf) == NodeKind::Internal {
                    stack.push(link1(buf));
                    let p = SlottedPage::new(buf, NODE_HDR);
                    for i in 0..p.slot_count() {
                        let (_, child) = decode_internal_cell(p.cell(i)?);
                        stack.push(child);
                    }
                }
            }
            self.pool.free(pid)?;
        }
        Ok(())
    }

    /// Drop every entry, freeing all pages except a fresh empty root leaf —
    /// [`BTree::destroy`] for a tree that stays open. The root page id
    /// changes; persist it again afterwards.
    ///
    /// Like [`BTree::delete`], freeing pages is **not** safe against
    /// concurrent readers of the same tree; callers must exclude readers
    /// for the duration.
    pub fn clear(&self) -> Result<()> {
        let _w = self.writer.lock();
        let fresh = self.pool.allocate()?;
        {
            let mut page = self.pool.fetch_mut(fresh)?;
            init_leaf(page.data_mut());
        }
        let old = self.root.swap(fresh, Ordering::AcqRel);
        let mut stack = vec![old];
        while let Some(pid) = stack.pop() {
            {
                let page = self.pool.fetch(pid)?;
                let buf = page.data();
                if kind(buf) == NodeKind::Internal {
                    stack.push(link1(buf));
                    let p = SlottedPage::new(buf, NODE_HDR);
                    for i in 0..p.slot_count() {
                        let (_, child) = decode_internal_cell(p.cell(i)?);
                        stack.push(child);
                    }
                }
            }
            self.pool.free(pid)?;
        }
        Ok(())
    }

    /// Returns `(removed value, node became empty)`.
    #[allow(clippy::type_complexity)]
    fn delete_rec(&self, pid: PageId, key: &[u8]) -> Result<(Option<Vec<u8>>, bool)> {
        let node_kind = {
            let page = self.pool.fetch(pid)?;
            kind(page.data())
        };
        match node_kind {
            NodeKind::Leaf => {
                let mut page = self.pool.fetch_mut(pid)?;
                let buf = page.data_mut();
                match search(buf, key) {
                    Err(_) => Ok((None, false)),
                    Ok(slot) => {
                        let old = {
                            let p = SlottedPage::new(buf, NODE_HDR);
                            decode_leaf_cell(p.cell(slot)?).1.to_vec()
                        };
                        let mut p = SlottedPageMut::new(buf, NODE_HDR);
                        p.remove(slot)?;
                        let empty = p.slot_count() == 0;
                        Ok((Some(old), empty))
                    }
                }
            }
            NodeKind::Internal => {
                let (cell_idx, child) = {
                    let page = self.pool.fetch(pid)?;
                    child_for(page.data(), key)
                };
                let (old, child_empty) = self.delete_rec(child, key)?;
                if !child_empty {
                    return Ok((old, false));
                }
                self.unlink_and_free(child)?;
                let mut page = self.pool.fetch_mut(pid)?;
                let buf = page.data_mut();
                match cell_idx {
                    Some(i) => {
                        SlottedPageMut::new(buf, NODE_HDR).remove(i)?;
                    }
                    None => {
                        // Leftmost child vanished: promote cell 0's child to
                        // leftmost, or report this node empty.
                        let p = SlottedPage::new(buf, NODE_HDR);
                        if p.slot_count() == 0 {
                            return Ok((old, true));
                        }
                        let (_, c0) = decode_internal_cell(p.cell(0)?);
                        set_link1(buf, c0);
                        SlottedPageMut::new(buf, NODE_HDR).remove(0)?;
                    }
                }
                // After removing a non-leftmost cell the node still has its
                // leftmost child, so it is never empty here; the truly-empty
                // case was returned from the leftmost branch above.
                Ok((old, false))
            }
        }
    }

    /// Unlink `pid` from the leaf chain (if it is a leaf) and free it.
    fn unlink_and_free(&self, pid: PageId) -> Result<()> {
        let (is_leaf, next, prev) = {
            let page = self.pool.fetch(pid)?;
            let buf = page.data();
            (kind(buf) == NodeKind::Leaf, link1(buf), link2(buf))
        };
        if is_leaf {
            if prev != INVALID_PAGE {
                let mut p = self.pool.fetch_mut(prev)?;
                set_link1(p.data_mut(), next);
            }
            if next != INVALID_PAGE {
                let mut p = self.pool.fetch_mut(next)?;
                set_link2(p.data_mut(), prev);
            }
        }
        self.pool.free(pid)
    }

    /// Leftmost leaf page of the tree.
    pub(crate) fn leftmost_leaf(&self) -> Result<PageId> {
        let mut pid = self.root_page();
        loop {
            let page = self.pool.fetch(pid)?;
            let buf = page.data();
            match kind(buf) {
                NodeKind::Leaf => return Ok(pid),
                NodeKind::Internal => pid = link1(buf),
            }
        }
    }

    /// Leaf page whose key range covers `key`.
    pub(crate) fn leaf_for(&self, key: &[u8]) -> Result<PageId> {
        let mut pid = self.root_page();
        loop {
            let page = self.pool.fetch(pid)?;
            let buf = page.data();
            match kind(buf) {
                NodeKind::Leaf => return Ok(pid),
                NodeKind::Internal => pid = child_for(buf, key).1,
            }
        }
    }

    /// Number of entries (walks the whole leaf chain — O(n)).
    pub fn len(&self) -> Result<u64> {
        let mut n = 0u64;
        let mut pid = self.leftmost_leaf()?;
        while pid != INVALID_PAGE {
            let page = self.pool.fetch(pid)?;
            let buf = page.data();
            n += u64::from(SlottedPage::new(buf, NODE_HDR).slot_count());
            pid = link1(buf);
        }
        Ok(n)
    }

    /// `true` when the tree holds no entries.
    pub fn is_empty(&self) -> Result<bool> {
        let pid = self.leftmost_leaf()?;
        let page = self.pool.fetch(pid)?;
        let buf = page.data();
        Ok(SlottedPage::new(buf, NODE_HDR).slot_count() == 0 && link1(buf) == INVALID_PAGE)
    }
}

/// `(replaced old value, upward split (separator, new right page))`.
type InsertOutcome = (Option<Vec<u8>>, Option<(Vec<u8>, PageId)>);

#[cfg(test)]
mod tests {
    use super::*;
    use vist_storage::MemPager;

    fn tree() -> BTree {
        let pool = Arc::new(BufferPool::with_capacity(MemPager::new(512), 256));
        BTree::create(pool).unwrap()
    }

    #[test]
    fn insert_get_small() {
        let t = tree();
        assert_eq!(t.insert(b"b", b"2").unwrap(), None);
        assert_eq!(t.insert(b"a", b"1").unwrap(), None);
        assert_eq!(t.insert(b"c", b"3").unwrap(), None);
        assert_eq!(t.get(b"a").unwrap().as_deref(), Some(&b"1"[..]));
        assert_eq!(t.get(b"b").unwrap().as_deref(), Some(&b"2"[..]));
        assert_eq!(t.get(b"c").unwrap().as_deref(), Some(&b"3"[..]));
        assert_eq!(t.get(b"d").unwrap(), None);
    }

    #[test]
    fn replace_returns_old() {
        let t = tree();
        assert_eq!(t.insert(b"k", b"v1").unwrap(), None);
        assert_eq!(t.insert(b"k", b"v2").unwrap().as_deref(), Some(&b"v1"[..]));
        assert_eq!(t.get(b"k").unwrap().as_deref(), Some(&b"v2"[..]));
        assert_eq!(t.len().unwrap(), 1);
    }

    #[test]
    fn many_inserts_split_and_stay_sorted() {
        let t = tree();
        let n = 2000u32;
        for i in 0..n {
            // Insert in a scrambled order.
            let k = (i.wrapping_mul(2654435761)) % n;
            let key = format!("key{k:08}");
            t.insert(key.as_bytes(), &k.to_le_bytes()).unwrap();
        }
        // Duplicates overwritten, all multiples present.
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..n {
            let k = (i.wrapping_mul(2654435761)) % n;
            seen.insert(k);
        }
        assert_eq!(t.len().unwrap(), seen.len() as u64);
        for k in &seen {
            let key = format!("key{k:08}");
            assert_eq!(
                t.get(key.as_bytes()).unwrap().as_deref(),
                Some(&k.to_le_bytes()[..]),
                "key {k}"
            );
        }
        crate::verify::check(&t).unwrap();
    }

    #[test]
    fn delete_simple_and_missing() {
        let t = tree();
        t.insert(b"x", b"1").unwrap();
        assert_eq!(t.delete(b"x").unwrap().as_deref(), Some(&b"1"[..]));
        assert_eq!(t.delete(b"x").unwrap(), None);
        assert_eq!(t.get(b"x").unwrap(), None);
        assert!(t.is_empty().unwrap());
    }

    #[test]
    fn delete_everything_collapses_tree() {
        let t = tree();
        let n = 1200u32;
        for i in 0..n {
            t.insert(format!("k{i:06}").as_bytes(), b"v").unwrap();
        }
        crate::verify::check(&t).unwrap();
        for i in 0..n {
            assert!(t.delete(format!("k{i:06}").as_bytes()).unwrap().is_some());
        }
        assert!(t.is_empty().unwrap());
        assert_eq!(t.len().unwrap(), 0);
        crate::verify::check(&t).unwrap();
        // Lazy deletion must still reclaim: only a handful of pages remain.
        assert!(
            t.pool().live_pages() < 10,
            "pages: {}",
            t.pool().live_pages()
        );
    }

    #[test]
    fn interleaved_insert_delete_matches_btreemap() {
        use std::collections::BTreeMap;
        let t = tree();
        let mut model = BTreeMap::new();
        let mut x = 0x243F6A88u64;
        for step in 0..6000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = format!("{:04}", (x >> 33) % 500);
            if (x >> 7).is_multiple_of(3) {
                let tv = t.delete(k.as_bytes()).unwrap();
                let mv = model.remove(k.as_bytes());
                assert_eq!(tv, mv, "step {step} delete {k}");
            } else {
                let v = format!("v{step}");
                let tv = t.insert(k.as_bytes(), v.as_bytes()).unwrap();
                let mv = model.insert(k.as_bytes().to_vec(), v.as_bytes().to_vec());
                assert_eq!(tv, mv, "step {step} insert {k}");
            }
        }
        assert_eq!(t.len().unwrap(), model.len() as u64);
        for (k, v) in &model {
            assert_eq!(t.get(k).unwrap().as_deref(), Some(&v[..]));
        }
        crate::verify::check(&t).unwrap();
    }

    #[test]
    fn oversized_record_rejected() {
        let t = tree();
        let big = vec![0u8; 600];
        assert!(matches!(
            t.insert(b"k", &big),
            Err(Error::PageOverflow { .. })
        ));
        // Tree unharmed.
        t.insert(b"k", b"small").unwrap();
        assert_eq!(t.get(b"k").unwrap().as_deref(), Some(&b"small"[..]));
    }

    #[test]
    fn variable_length_keys() {
        let t = tree();
        let keys: Vec<Vec<u8>> = (0..300)
            .map(|i| {
                let mut k = vec![b'p'; i % 40];
                k.extend_from_slice(format!("{i:05}").as_bytes());
                k
            })
            .collect();
        for k in &keys {
            t.insert(k, b"v").unwrap();
        }
        for k in &keys {
            assert!(t.contains(k).unwrap());
        }
        crate::verify::check(&t).unwrap();
    }

    #[test]
    fn empty_key_and_value_supported() {
        let t = tree();
        t.insert(b"", b"").unwrap();
        assert_eq!(t.get(b"").unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(t.delete(b"").unwrap().as_deref(), Some(&b""[..]));
    }

    #[test]
    fn get_chases_right_siblings_past_stale_parent() {
        // Hand-build the split window a concurrent reader can observe: the
        // leaf chain is A("a","b") -> B("c","d") -> C("e","f"), but the
        // parent knows only A — as if two leaf splits had completed without
        // their separators reaching the parent yet. get() must recover by
        // chasing link1 at the leaf level.
        let pool = Arc::new(BufferPool::with_capacity(MemPager::new(512), 64));
        let a = pool.allocate().unwrap();
        let b = pool.allocate().unwrap();
        let c = pool.allocate().unwrap();
        let root = pool.allocate().unwrap();
        let fill = |pid, keys: &[&[u8]], next| {
            let mut p = pool.fetch_mut(pid).unwrap();
            let buf = p.data_mut();
            init_leaf(buf);
            set_link1(buf, next);
            for (i, k) in keys.iter().enumerate() {
                SlottedPageMut::new(buf, NODE_HDR)
                    .insert(i as SlotId, &leaf_cell(k, b"v"))
                    .unwrap();
            }
        };
        fill(a, &[b"a", b"b"], b);
        fill(b, &[b"c", b"d"], c);
        fill(c, &[b"e", b"f"], INVALID_PAGE);
        {
            let mut p = pool.fetch_mut(root).unwrap();
            init_internal(p.data_mut(), a);
        }
        let t = BTree::open(pool, root).unwrap();
        // Keys in the stale parent's only known child.
        assert!(t.get(b"a").unwrap().is_some());
        assert!(t.get(b"b").unwrap().is_some());
        // Keys one and two hops to the right.
        assert!(t.get(b"c").unwrap().is_some(), "one-hop chase");
        assert!(t.get(b"d").unwrap().is_some());
        assert!(t.get(b"e").unwrap().is_some(), "two-hop chase");
        assert!(t.get(b"f").unwrap().is_some());
        // Absent keys: the chase must stop at the covering leaf (bb < c)
        // and at the end of the chain (zz beyond everything).
        assert_eq!(t.get(b"bb").unwrap(), None);
        assert_eq!(t.get(b"zz").unwrap(), None);
    }

    #[test]
    fn concurrent_readers_never_miss_committed_keys() {
        let pool = Arc::new(BufferPool::with_capacity(MemPager::new(512), 4096));
        let t = Arc::new(BTree::create(pool).unwrap());
        let committed = Arc::new(AtomicU32::new(0));
        let n = 4000u32;
        let writer = {
            let t = Arc::clone(&t);
            let committed = Arc::clone(&committed);
            std::thread::spawn(move || {
                for i in 0..n {
                    t.insert(format!("key{i:08}").as_bytes(), &i.to_le_bytes())
                        .unwrap();
                    committed.store(i + 1, Ordering::Release);
                }
            })
        };
        let readers: Vec<_> = (0..4u64)
            .map(|r| {
                let t = Arc::clone(&t);
                let committed = Arc::clone(&committed);
                std::thread::spawn(move || {
                    let mut x = 0x9E3779B97F4A7C15u64 ^ r;
                    loop {
                        let hi = committed.load(Ordering::Acquire);
                        if hi == 0 {
                            continue;
                        }
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        // Bias half the lookups to the freshest committed
                        // key — that is the one a racing split moves right.
                        let k = if x & 1 == 0 {
                            hi - 1
                        } else {
                            (x >> 33) as u32 % hi
                        };
                        let key = format!("key{k:08}");
                        assert!(
                            t.get(key.as_bytes()).unwrap().is_some(),
                            "committed key {k} missing (watermark {hi})"
                        );
                        if hi == n {
                            break;
                        }
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
    }

    #[test]
    fn reopen_by_root_page() {
        let pool = Arc::new(BufferPool::with_capacity(MemPager::new(512), 64));
        let t = BTree::create(Arc::clone(&pool)).unwrap();
        for i in 0..500u32 {
            t.insert(format!("k{i:05}").as_bytes(), &i.to_le_bytes())
                .unwrap();
        }
        let root = t.root_page();
        drop(t);
        let t2 = BTree::open(pool, root).unwrap();
        assert_eq!(t2.len().unwrap(), 500);
        assert_eq!(
            t2.get(b"k00042").unwrap().as_deref(),
            Some(&42u32.to_le_bytes()[..])
        );
    }
}
