//! Per-tree space accounting, used by the index-size experiments
//! (Figure 11a reports the DocId tree and the combined D/S-Ancestor trees
//! separately).

use vist_storage::{Result, SlottedPage};

use crate::node::{decode_internal_cell, kind, link1, NodeKind, NODE_HDR};
use crate::tree::BTree;

/// Space statistics of one B+Tree.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TreeStats {
    /// Leaf pages.
    pub leaf_pages: u64,
    /// Internal pages.
    pub internal_pages: u64,
    /// Key/value records stored.
    pub entries: u64,
    /// Bytes occupied by live cells (keys + values + headers).
    pub used_bytes: u64,
    /// Total bytes of all pages of this tree.
    pub total_bytes: u64,
    /// Bytes occupied by live cells on **leaf** pages only.
    pub leaf_used_bytes: u64,
    /// Total bytes of all leaf pages.
    pub leaf_total_bytes: u64,
    /// Height of the tree (1 = a single leaf).
    pub height: u32,
}

impl TreeStats {
    /// Space utilization in `[0, 1]`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.total_bytes == 0 {
            return 0.0;
        }
        self.used_bytes as f64 / self.total_bytes as f64
    }

    /// Average leaf fill factor in `[0, 1]` — the number that separates a
    /// packed segment (~1.0) from an incrementally grown delta (~0.5-0.7
    /// after splits).
    #[must_use]
    pub fn leaf_fill(&self) -> f64 {
        if self.leaf_total_bytes == 0 {
            return 0.0;
        }
        self.leaf_used_bytes as f64 / self.leaf_total_bytes as f64
    }
}

impl BTree {
    /// Walk the whole tree and account its pages, entries and bytes.
    /// O(pages); intended for tooling and experiments, not hot paths.
    pub fn tree_stats(&self) -> Result<TreeStats> {
        let page_size = self.pool().page_size() as u64;
        let mut stats = TreeStats::default();
        let mut depth_of_leaf = 0u32;
        let mut stack: Vec<(vist_storage::PageId, u32)> = vec![(self.root_page(), 1)];
        while let Some((pid, depth)) = stack.pop() {
            let page = self.pool().fetch(pid)?;
            let buf = page.data();
            let p = SlottedPage::new(buf, NODE_HDR);
            let used = (page_size as usize) - p.total_free();
            stats.used_bytes += used as u64;
            stats.total_bytes += page_size;
            match kind(buf) {
                NodeKind::Leaf => {
                    stats.leaf_pages += 1;
                    stats.entries += u64::from(p.slot_count());
                    stats.leaf_used_bytes += used as u64;
                    stats.leaf_total_bytes += page_size;
                    depth_of_leaf = depth_of_leaf.max(depth);
                }
                NodeKind::Internal => {
                    stats.internal_pages += 1;
                    stack.push((link1(buf), depth + 1));
                    for i in 0..p.slot_count() {
                        let (_, child) = decode_internal_cell(p.cell(i)?);
                        stack.push((child, depth + 1));
                    }
                }
            }
        }
        stats.height = depth_of_leaf;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vist_storage::{BufferPool, MemPager};

    fn tree_with(n: u32) -> BTree {
        let pool = Arc::new(BufferPool::with_capacity(MemPager::new(512), 256));
        let t = BTree::create(pool).unwrap();
        for i in 0..n {
            t.insert(format!("key{i:06}").as_bytes(), b"value").unwrap();
        }
        t
    }

    #[test]
    fn empty_tree_is_one_leaf() {
        let t = tree_with(0);
        let s = t.tree_stats().unwrap();
        assert_eq!(s.leaf_pages, 1);
        assert_eq!(s.internal_pages, 0);
        assert_eq!(s.entries, 0);
        assert_eq!(s.height, 1);
    }

    #[test]
    fn entries_and_pages_counted() {
        let t = tree_with(2000);
        let s = t.tree_stats().unwrap();
        assert_eq!(s.entries, 2000);
        assert!(s.leaf_pages > 10, "512-byte pages force many leaves");
        assert!(s.internal_pages >= 1);
        assert!(s.height >= 2);
        assert!(s.utilization() > 0.3 && s.utilization() <= 1.0);
        assert_eq!(s.total_bytes, (s.leaf_pages + s.internal_pages) * 512);
    }

    #[test]
    fn stats_shrink_after_full_deletion() {
        let t = tree_with(1000);
        for i in 0..1000 {
            t.delete(format!("key{i:06}").as_bytes()).unwrap();
        }
        let s = t.tree_stats().unwrap();
        assert_eq!(s.entries, 0);
        assert!(
            s.leaf_pages + s.internal_pages < 5,
            "lazy deletion reclaims empties"
        );
    }
}
