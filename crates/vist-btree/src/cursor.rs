//! Ordered range scans over the leaf chain.

use std::collections::VecDeque;
use std::ops::{Bound, ControlFlow, RangeBounds};

use vist_storage::{PageId, Result, SlottedPage, INVALID_PAGE};

use crate::node::{decode_leaf_cell, link1, NODE_HDR};
use crate::tree::BTree;

/// Iterator over `(key, value)` pairs in key order.
///
/// Created by [`BTree::scan`] / [`BTree::scan_prefix`]. The scan borrows the
/// tree immutably, so the tree cannot be modified while a scan is live — the
/// borrow checker enforces the stability the iterator relies on.
///
/// Each leaf page's qualifying records are copied out in one batch, so page
/// guards are never held across `next()` calls.
pub struct Scan<'a> {
    tree: &'a BTree,
    /// Records buffered from the current leaf.
    buffered: VecDeque<(Vec<u8>, Vec<u8>)>,
    /// Next leaf to read, or `INVALID_PAGE` when exhausted.
    next_leaf: PageId,
    start: Bound<Vec<u8>>,
    end: Bound<Vec<u8>>,
    done: bool,
    /// Records handed out so far; recorded into the `vist_btree_scan_len`
    /// histogram when the scan drops.
    yielded: u64,
}

impl Drop for Scan<'_> {
    fn drop(&mut self) {
        vist_obs::histogram!("vist_btree_scan_len").record(self.yielded);
    }
}

fn within_start(key: &[u8], start: &Bound<Vec<u8>>) -> bool {
    match start {
        Bound::Unbounded => true,
        Bound::Included(s) => key >= s.as_slice(),
        Bound::Excluded(s) => key > s.as_slice(),
    }
}

fn within_end(key: &[u8], end: &Bound<Vec<u8>>) -> bool {
    match end {
        Bound::Unbounded => true,
        Bound::Included(e) => key <= e.as_slice(),
        Bound::Excluded(e) => key < e.as_slice(),
    }
}

impl<'a> Scan<'a> {
    pub(crate) fn new<'k, R>(tree: &'a BTree, range: R) -> Result<Self>
    where
        R: RangeBounds<&'k [u8]>,
    {
        let start = match range.start_bound() {
            Bound::Unbounded => Bound::Unbounded,
            Bound::Included(s) => Bound::Included(s.to_vec()),
            Bound::Excluded(s) => Bound::Excluded(s.to_vec()),
        };
        let end = match range.end_bound() {
            Bound::Unbounded => Bound::Unbounded,
            Bound::Included(e) => Bound::Included(e.to_vec()),
            Bound::Excluded(e) => Bound::Excluded(e.to_vec()),
        };
        let first_leaf = match &start {
            Bound::Unbounded => tree.leftmost_leaf()?,
            Bound::Included(s) | Bound::Excluded(s) => tree.leaf_for(s)?,
        };
        let mut scan = Scan {
            tree,
            buffered: VecDeque::new(),
            next_leaf: first_leaf,
            start,
            end,
            done: false,
            yielded: 0,
        };
        scan.fill()?;
        Ok(scan)
    }

    /// Read the next leaf's qualifying records into the buffer. Sets `done`
    /// when the end bound is passed or the chain ends.
    fn fill(&mut self) -> Result<()> {
        while self.buffered.is_empty() && !self.done {
            if self.next_leaf == INVALID_PAGE {
                self.done = true;
                return Ok(());
            }
            let page = self.tree.pool().fetch(self.next_leaf)?;
            let buf = page.data();
            self.next_leaf = link1(buf);
            let p = SlottedPage::new(buf, NODE_HDR);
            for i in 0..p.slot_count() {
                let (k, v) = decode_leaf_cell(p.cell(i)?);
                if !within_start(k, &self.start) {
                    continue;
                }
                if !within_end(k, &self.end) {
                    self.done = true;
                    break;
                }
                self.buffered.push_back((k.to_vec(), v.to_vec()));
            }
        }
        Ok(())
    }
}

impl Iterator for Scan<'_> {
    type Item = Result<(Vec<u8>, Vec<u8>)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.buffered.is_empty() {
            if let Err(e) = self.fill() {
                self.done = true;
                return Some(Err(e));
            }
        }
        let item = self.buffered.pop_front();
        if item.is_some() {
            self.yielded += 1;
        }
        item.map(Ok)
    }
}

impl BTree {
    /// Iterate over all `(key, value)` pairs with keys in `range`, in key
    /// order.
    ///
    /// ```
    /// # use std::sync::Arc;
    /// # use vist_storage::{BufferPool, MemPager};
    /// # use vist_btree::BTree;
    /// # let pool = Arc::new(BufferPool::with_capacity(MemPager::new(4096), 16));
    /// # let mut t = BTree::create(pool).unwrap();
    /// t.insert(b"a", b"1").unwrap();
    /// t.insert(b"b", b"2").unwrap();
    /// t.insert(b"c", b"3").unwrap();
    /// let hits: Vec<_> = t
    ///     .scan(&b"a"[..]..&b"c"[..])
    ///     .unwrap()
    ///     .map(|r| r.unwrap().0)
    ///     .collect();
    /// assert_eq!(hits, vec![b"a".to_vec(), b"b".to_vec()]);
    /// ```
    pub fn scan<'k, R>(&self, range: R) -> Result<Scan<'_>>
    where
        R: RangeBounds<&'k [u8]>,
    {
        Scan::new(self, range)
    }

    /// Iterate over all entries whose key starts with `prefix`.
    pub fn scan_prefix(&self, prefix: &[u8]) -> Result<Scan<'_>> {
        match crate::codec::prefix_upper_bound(prefix) {
            Some(ub) => self.scan((Bound::Included(prefix), Bound::Excluded(ub.as_slice()))),
            None => self.scan((Bound::Included(prefix), Bound::Unbounded)),
        }
    }

    /// Visit every `(key, value)` pair with keys in `range`, in key order,
    /// without copying: `f` receives slices borrowed directly from the leaf
    /// page. Return [`ControlFlow::Break`] from `f` to stop early.
    ///
    /// This is the zero-allocation counterpart of [`BTree::scan`] for hot
    /// paths: where `scan` copies each leaf's qualifying records into an
    /// owned buffer, `for_each_in` holds the leaf's shared page latch across
    /// the callbacks for that leaf and hands out borrowed slices. The latch
    /// is dropped before the next leaf in the chain is fetched, so writers
    /// are only excluded from one page at a time (B-link right-chaining
    /// keeps the traversal safe across concurrent splits, as in `scan`).
    ///
    /// **Constraint:** because a page latch is held while `f` runs, `f`
    /// must not re-enter this tree's buffer pool (no `get`/`scan`/... on
    /// any tree sharing the pool) — the pinned page can never be evicted,
    /// so a nested fetch could exhaust the pool. Decode and accumulate into
    /// caller-owned memory instead.
    pub fn for_each_in<'k, R, F>(&self, range: R, mut f: F) -> Result<()>
    where
        R: RangeBounds<&'k [u8]>,
        F: FnMut(&[u8], &[u8]) -> ControlFlow<()>,
    {
        let start = match range.start_bound() {
            Bound::Unbounded => Bound::Unbounded,
            Bound::Included(s) => Bound::Included(s.to_vec()),
            Bound::Excluded(s) => Bound::Excluded(s.to_vec()),
        };
        let end = match range.end_bound() {
            Bound::Unbounded => Bound::Unbounded,
            Bound::Included(e) => Bound::Included(e.to_vec()),
            Bound::Excluded(e) => Bound::Excluded(e.to_vec()),
        };
        let mut leaf = match &start {
            Bound::Unbounded => self.leftmost_leaf()?,
            Bound::Included(s) | Bound::Excluded(s) => self.leaf_for(s)?,
        };
        let mut visited = 0u64;
        let scan_len = vist_obs::histogram!("vist_btree_scan_len");
        while leaf != INVALID_PAGE {
            let page = self.pool().fetch(leaf)?;
            let buf = page.data();
            let next = link1(buf);
            let p = SlottedPage::new(buf, NODE_HDR);
            for i in 0..p.slot_count() {
                let (k, v) = decode_leaf_cell(p.cell(i)?);
                if !within_start(k, &start) {
                    continue;
                }
                if !within_end(k, &end) {
                    scan_len.record(visited);
                    return Ok(());
                }
                visited += 1;
                if f(k, v).is_break() {
                    scan_len.record(visited);
                    return Ok(());
                }
            }
            drop(page);
            leaf = next;
        }
        scan_len.record(visited);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vist_storage::{BufferPool, MemPager};

    fn filled(n: u32) -> BTree {
        let pool = Arc::new(BufferPool::with_capacity(MemPager::new(512), 256));
        let t = BTree::create(pool).unwrap();
        for i in 0..n {
            t.insert(format!("k{i:06}").as_bytes(), &i.to_le_bytes())
                .unwrap();
        }
        t
    }

    fn keys(scan: Scan<'_>) -> Vec<String> {
        scan.map(|r| String::from_utf8(r.unwrap().0).unwrap())
            .collect()
    }

    #[test]
    fn full_scan_in_order() {
        let t = filled(1500);
        let ks = keys(t.scan(..).unwrap());
        assert_eq!(ks.len(), 1500);
        let mut sorted = ks.clone();
        sorted.sort();
        assert_eq!(ks, sorted);
        assert_eq!(ks[0], "k000000");
        assert_eq!(ks[1499], "k001499");
    }

    #[test]
    fn bounded_ranges() {
        let t = filled(100);
        let ks = keys(t.scan(&b"k000010"[..]..&b"k000013"[..]).unwrap());
        assert_eq!(ks, vec!["k000010", "k000011", "k000012"]);
        // Inclusive end.
        let ks = keys(t.scan(&b"k000097"[..]..=&b"k000099"[..]).unwrap());
        assert_eq!(ks, vec!["k000097", "k000098", "k000099"]);
        // Start beyond the data.
        let ks = keys(t.scan(&b"z"[..]..).unwrap());
        assert!(ks.is_empty());
        // Excluded start.
        let ks = keys(
            t.scan((
                Bound::Excluded(&b"k000000"[..]),
                Bound::Excluded(&b"k000003"[..]),
            ))
            .unwrap(),
        );
        assert_eq!(ks, vec!["k000001", "k000002"]);
    }

    #[test]
    fn range_bounds_not_in_tree() {
        let t = filled(50);
        // Bounds fall between existing keys.
        let ks = keys(t.scan(&b"k0000055"[..]..&b"k0000105"[..]).unwrap());
        assert_eq!(
            ks,
            vec!["k000006", "k000007", "k000008", "k000009", "k000010"]
        );
    }

    #[test]
    fn prefix_scan() {
        let pool = Arc::new(BufferPool::with_capacity(MemPager::new(512), 64));
        let t = BTree::create(pool).unwrap();
        for k in ["ab", "abc", "abd", "ac", "b"] {
            t.insert(k.as_bytes(), b"").unwrap();
        }
        let ks = keys(t.scan_prefix(b"ab").unwrap());
        assert_eq!(ks, vec!["ab", "abc", "abd"]);
        let ks = keys(t.scan_prefix(b"").unwrap());
        assert_eq!(ks.len(), 5);
        let ks = keys(t.scan_prefix(b"zz").unwrap());
        assert!(ks.is_empty());
    }

    #[test]
    fn empty_tree_scans_empty() {
        let pool = Arc::new(BufferPool::with_capacity(MemPager::new(512), 16));
        let t = BTree::create(pool).unwrap();
        assert!(keys(t.scan(..).unwrap()).is_empty());
        assert!(keys(t.scan(&b"a"[..]..&b"z"[..]).unwrap()).is_empty());
    }

    #[test]
    fn for_each_in_matches_scan() {
        let t = filled(1500);
        for range in [
            (Bound::Unbounded, Bound::Unbounded),
            (
                Bound::Included(b"k000010".to_vec()),
                Bound::Excluded(b"k000499".to_vec()),
            ),
            (
                Bound::Excluded(b"k000000".to_vec()),
                Bound::Included(b"k000003".to_vec()),
            ),
            (Bound::Included(b"z".to_vec()), Bound::Unbounded),
        ] {
            let as_bounds = (
                match &range.0 {
                    Bound::Unbounded => Bound::Unbounded,
                    Bound::Included(s) => Bound::Included(s.as_slice()),
                    Bound::Excluded(s) => Bound::Excluded(s.as_slice()),
                },
                match &range.1 {
                    Bound::Unbounded => Bound::Unbounded,
                    Bound::Included(e) => Bound::Included(e.as_slice()),
                    Bound::Excluded(e) => Bound::Excluded(e.as_slice()),
                },
            );
            let copied: Vec<(Vec<u8>, Vec<u8>)> =
                t.scan(as_bounds).unwrap().collect::<Result<_>>().unwrap();
            let mut streamed = Vec::new();
            t.for_each_in(as_bounds, |k, v| {
                streamed.push((k.to_vec(), v.to_vec()));
                ControlFlow::Continue(())
            })
            .unwrap();
            assert_eq!(copied, streamed, "range {range:?}");
        }
    }

    #[test]
    fn for_each_in_breaks_early() {
        let t = filled(1000);
        let mut seen = Vec::new();
        t.for_each_in(.., |k, _| {
            seen.push(k.to_vec());
            if seen.len() == 7 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        })
        .unwrap();
        assert_eq!(seen.len(), 7);
        assert_eq!(seen[0], b"k000000".to_vec());
        assert_eq!(seen[6], b"k000006".to_vec());
    }

    #[test]
    fn for_each_in_empty_tree() {
        let pool = Arc::new(BufferPool::with_capacity(MemPager::new(512), 16));
        let t = BTree::create(pool).unwrap();
        let mut n = 0;
        t.for_each_in(.., |_, _| {
            n += 1;
            ControlFlow::Continue(())
        })
        .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn scan_after_deletions() {
        let t = filled(300);
        for i in (0..300u32).step_by(2) {
            t.delete(format!("k{i:06}").as_bytes()).unwrap();
        }
        let ks = keys(t.scan(..).unwrap());
        assert_eq!(ks.len(), 150);
        assert!(ks.iter().all(|k| {
            let n: u32 = k[1..].parse().unwrap();
            n % 2 == 1
        }));
    }
}
