//! Concurrency tests for the single-writer / multi-reader B+Tree contract:
//! readers run `get`/`scan`/`len` while one writer inserts, with no panics
//! and a post-quiesce state identical to a serial build.

use std::sync::Arc;

use vist_btree::{verify, BTree};
use vist_storage::{BufferPool, MemPager};

fn key(i: u32) -> Vec<u8> {
    format!("key{i:06}").into_bytes()
}

#[test]
fn readers_survive_concurrent_inserts() {
    let pool = Arc::new(BufferPool::with_capacity(MemPager::new(512), 128));
    let tree = Arc::new(BTree::create(pool).unwrap());

    // Pre-populate so readers always have something to find.
    const PREFILL: u32 = 500;
    const EXTRA: u32 = 1500;
    for i in 0..PREFILL {
        tree.insert(&key(i), &i.to_le_bytes()).unwrap();
    }

    std::thread::scope(|s| {
        let writer = {
            let tree = Arc::clone(&tree);
            s.spawn(move || {
                for i in PREFILL..PREFILL + EXTRA {
                    tree.insert(&key(i), &i.to_le_bytes()).unwrap();
                }
            })
        };
        for t in 0..6usize {
            let tree = Arc::clone(&tree);
            s.spawn(move || {
                for round in 0..400usize {
                    // Pre-filled keys must always be visible, with the value
                    // they were created with.
                    let i = ((t * 131 + round * 17) as u32) % PREFILL;
                    let got = tree.get(&key(i)).unwrap();
                    assert_eq!(got.as_deref(), Some(&i.to_le_bytes()[..]), "key {i}");
                    // Scans over the prefix may or may not see in-flight
                    // keys but must never error or return garbage.
                    if round % 32 == 0 {
                        let mut n = 0u32;
                        for r in tree.scan(&key(0)[..]..&key(PREFILL + EXTRA)[..]).unwrap() {
                            r.unwrap();
                            n += 1;
                        }
                        assert!(n >= PREFILL, "scan lost pre-filled keys: {n}");
                    }
                }
            });
        }
        writer.join().unwrap();
    });

    // Post-quiesce: exactly the serial result.
    assert_eq!(tree.len().unwrap(), u64::from(PREFILL + EXTRA));
    for i in 0..PREFILL + EXTRA {
        assert_eq!(
            tree.get(&key(i)).unwrap().as_deref(),
            Some(&i.to_le_bytes()[..])
        );
    }
    verify::check(&tree).unwrap();
}

#[test]
fn concurrent_writers_serialize() {
    let pool = Arc::new(BufferPool::with_capacity(MemPager::new(512), 128));
    let tree = Arc::new(BTree::create(pool).unwrap());
    std::thread::scope(|s| {
        for t in 0..4u32 {
            let tree = Arc::clone(&tree);
            s.spawn(move || {
                for i in 0..300u32 {
                    let k = format!("w{t}-{i:05}");
                    tree.insert(k.as_bytes(), &[t as u8]).unwrap();
                }
            });
        }
    });
    assert_eq!(tree.len().unwrap(), 4 * 300);
    verify::check(&tree).unwrap();
}
