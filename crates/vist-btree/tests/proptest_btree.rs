//! Property-based tests: the B+Tree must behave exactly like
//! `std::collections::BTreeMap` under arbitrary operation sequences, and its
//! structural invariants must hold after every batch.

use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::Arc;

use proptest::prelude::*;
use vist_btree::{verify, BTree};
use vist_storage::{BufferPool, FilePager, MemPager};

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u8>, Vec<u8>),
    Delete(Vec<u8>),
    Get(Vec<u8>),
    Scan(Vec<u8>, Vec<u8>),
}

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    // Small alphabet and lengths force heavy key collisions and deep
    // structure sharing.
    proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 0..6)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (key_strategy(), proptest::collection::vec(any::<u8>(), 0..20))
            .prop_map(|(k, v)| Op::Insert(k, v)),
        2 => key_strategy().prop_map(Op::Delete),
        1 => key_strategy().prop_map(Op::Get),
        1 => (key_strategy(), key_strategy()).prop_map(|(a, b)| Op::Scan(a, b)),
    ]
}

fn run_ops(tree: &mut BTree, ops: &[Op]) {
    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Insert(k, v) => {
                let got = tree.insert(k, v).unwrap();
                let want = model.insert(k.clone(), v.clone());
                assert_eq!(got, want, "op {i}: insert {k:?}");
            }
            Op::Delete(k) => {
                let got = tree.delete(k).unwrap();
                let want = model.remove(k);
                assert_eq!(got, want, "op {i}: delete {k:?}");
            }
            Op::Get(k) => {
                assert_eq!(tree.get(k).unwrap(), model.get(k).cloned(), "op {i}");
            }
            Op::Scan(a, b) => {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                let got: Vec<_> = tree
                    .scan(&lo[..]..&hi[..])
                    .unwrap()
                    .map(|r| r.unwrap())
                    .collect();
                let want: Vec<_> = model
                    .range::<Vec<u8>, _>((Bound::Included(lo), Bound::Excluded(hi)))
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                assert_eq!(got, want, "op {i}: scan {lo:?}..{hi:?}");
            }
        }
    }
    verify::check(tree).unwrap();
    // Full scan equals the model.
    let got: Vec<_> = tree.scan(..).unwrap().map(|r| r.unwrap()).collect();
    let want: Vec<_> = model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
    assert_eq!(got, want);
    assert_eq!(tree.len().unwrap(), model.len() as u64);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn btree_matches_btreemap_mem(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        // Tiny pages force frequent splits and multi-level trees.
        let pool = Arc::new(BufferPool::with_capacity(MemPager::new(256), 32));
        let mut tree = BTree::create(pool).unwrap();
        run_ops(&mut tree, &ops);
    }

    #[test]
    fn btree_matches_btreemap_file(ops in proptest::collection::vec(op_strategy(), 1..150)) {
        let path = std::env::temp_dir().join(format!(
            "vist-btree-prop-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        {
            let pager = FilePager::create(&path, 256).unwrap();
            let pool = Arc::new(BufferPool::with_capacity(pager, 16));
            let mut tree = BTree::create(pool).unwrap();
            run_ops(&mut tree, &ops);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reopen_preserves_contents(kvs in proptest::collection::btree_map(
        key_strategy(), proptest::collection::vec(any::<u8>(), 0..16), 0..120)) {
        let path = std::env::temp_dir().join(format!(
            "vist-btree-reopen-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let root;
        {
            let pager = FilePager::create(&path, 256).unwrap();
            let pool = Arc::new(BufferPool::with_capacity(pager, 16));
            let mut tree = BTree::create(pool.clone()).unwrap();
            for (k, v) in &kvs {
                tree.insert(k, v).unwrap();
            }
            root = tree.root_page();
            pool.flush().unwrap();
        }
        {
            let pager = FilePager::open(&path).unwrap();
            let pool = Arc::new(BufferPool::with_capacity(pager, 16));
            let tree = BTree::open(pool, root).unwrap();
            verify::check(&tree).unwrap();
            let got: Vec<_> = tree.scan(..).unwrap().map(|r| r.unwrap()).collect();
            let want: Vec<_> = kvs.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
            prop_assert_eq!(got, want);
        }
        let _ = std::fs::remove_file(&path);
    }
}
