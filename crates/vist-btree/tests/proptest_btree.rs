//! Randomized differential tests: the B+Tree must behave exactly like
//! `std::collections::BTreeMap` under arbitrary operation sequences, and its
//! structural invariants must hold after every batch.
//!
//! A seeded splitmix64 generator drives the op sequences, so every run is
//! deterministic and failures reproduce from the case number.

use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::Arc;

use vist_btree::{verify, BTree};
use vist_storage::{BufferPool, FilePager, MemPager};

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u8>, Vec<u8>),
    Delete(Vec<u8>),
    Get(Vec<u8>),
    Scan(Vec<u8>, Vec<u8>),
}

/// Small alphabet and lengths force heavy key collisions and deep
/// structure sharing.
fn random_key(rng: &mut Rng) -> Vec<u8> {
    let len = rng.below(6);
    (0..len).map(|_| b"abc"[rng.below(3)]).collect()
}

fn random_value(rng: &mut Rng, max: usize) -> Vec<u8> {
    let len = rng.below(max);
    (0..len).map(|_| rng.next() as u8).collect()
}

fn random_ops(rng: &mut Rng, n: usize) -> Vec<Op> {
    (0..n)
        .map(|_| match rng.below(7) {
            0..=2 => {
                let k = random_key(rng);
                let v = random_value(rng, 20);
                Op::Insert(k, v)
            }
            3..=4 => Op::Delete(random_key(rng)),
            5 => Op::Get(random_key(rng)),
            _ => Op::Scan(random_key(rng), random_key(rng)),
        })
        .collect()
}

fn run_ops(tree: &BTree, ops: &[Op]) {
    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Insert(k, v) => {
                let got = tree.insert(k, v).unwrap();
                let want = model.insert(k.clone(), v.clone());
                assert_eq!(got, want, "op {i}: insert {k:?}");
            }
            Op::Delete(k) => {
                let got = tree.delete(k).unwrap();
                let want = model.remove(k);
                assert_eq!(got, want, "op {i}: delete {k:?}");
            }
            Op::Get(k) => {
                assert_eq!(tree.get(k).unwrap(), model.get(k).cloned(), "op {i}");
            }
            Op::Scan(a, b) => {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                let got: Vec<_> = tree
                    .scan(&lo[..]..&hi[..])
                    .unwrap()
                    .map(|r| r.unwrap())
                    .collect();
                let want: Vec<_> = model
                    .range::<Vec<u8>, _>((Bound::Included(lo), Bound::Excluded(hi)))
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                assert_eq!(got, want, "op {i}: scan {lo:?}..{hi:?}");
            }
        }
    }
    verify::check(tree).unwrap();
    // Full scan equals the model.
    let got: Vec<_> = tree.scan(..).unwrap().map(|r| r.unwrap()).collect();
    let want: Vec<_> = model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
    assert_eq!(got, want);
    assert_eq!(tree.len().unwrap(), model.len() as u64);
}

#[test]
fn btree_matches_btreemap_mem() {
    for case in 0..64u64 {
        let mut rng = Rng(0xB7EE ^ (case << 8));
        let len = 1 + rng.below(399);
        let ops = random_ops(&mut rng, len);
        // Tiny pages force frequent splits and multi-level trees.
        let pool = Arc::new(BufferPool::with_capacity(MemPager::new(256), 32));
        let tree = BTree::create(pool).unwrap();
        run_ops(&tree, &ops);
    }
}

#[test]
fn btree_matches_btreemap_file() {
    for case in 0..24u64 {
        let mut rng = Rng(0xF11E ^ (case << 8));
        let len = 1 + rng.below(149);
        let ops = random_ops(&mut rng, len);
        let path =
            std::env::temp_dir().join(format!("vist-btree-prop-{}-{case}", std::process::id()));
        {
            let pager = FilePager::create(&path, 256).unwrap();
            let pool = Arc::new(BufferPool::with_capacity(pager, 16));
            let tree = BTree::create(pool).unwrap();
            run_ops(&tree, &ops);
        }
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn reopen_preserves_contents() {
    for case in 0..16u64 {
        let mut rng = Rng(0x5EED ^ (case << 8));
        let mut kvs: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for _ in 0..rng.below(120) {
            let k = random_key(&mut rng);
            let v = random_value(&mut rng, 16);
            kvs.insert(k, v);
        }
        let path =
            std::env::temp_dir().join(format!("vist-btree-reopen-{}-{case}", std::process::id()));
        let root;
        {
            let pager = FilePager::create(&path, 256).unwrap();
            let pool = Arc::new(BufferPool::with_capacity(pager, 16));
            let tree = BTree::create(pool.clone()).unwrap();
            for (k, v) in &kvs {
                tree.insert(k, v).unwrap();
            }
            root = tree.root_page();
            pool.flush().unwrap();
        }
        {
            let pager = FilePager::open(&path).unwrap();
            let pool = Arc::new(BufferPool::with_capacity(pager, 16));
            let tree = BTree::open(pool, root).unwrap();
            verify::check(&tree).unwrap();
            let got: Vec<_> = tree.scan(..).unwrap().map(|r| r.unwrap()).collect();
            let want: Vec<_> = kvs.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
            assert_eq!(got, want);
        }
        let _ = std::fs::remove_file(&path);
    }
}
