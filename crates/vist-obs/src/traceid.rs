//! 128-bit trace-id minting and hex formatting.
//!
//! A trace id names one request (or one background operation) across
//! every layer it touches: the serve front-end mints or accepts one,
//! the engine carries it on its options, and the slow log, wide-event
//! access log, retained span trees, and histogram exemplars all key on
//! it. Zero is reserved as the wire encoding for "absent" — [`mint`]
//! never returns it.
//!
//! Ids are minted std-only: wall-clock nanoseconds, the process id, and
//! a process-global sequence number pushed through a SplitMix64 mixer.
//! That makes them unique per process and overwhelmingly likely unique
//! across processes, which is all a debugging correlator needs — they
//! are not a cryptographic surface.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

static SEQ: AtomicU64 = AtomicU64::new(0);

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mint a fresh, never-zero 128-bit trace id.
#[must_use]
pub fn mint() -> u128 {
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64);
    let pid = u64::from(std::process::id());
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let hi = splitmix64(nanos ^ pid.rotate_left(32));
    let lo = splitmix64(seq ^ nanos.rotate_left(17) ^ pid);
    let id = (u128::from(hi) << 64) | u128::from(lo);
    if id == 0 {
        1
    } else {
        id
    }
}

/// Render a trace id as 32 lowercase hex digits (the `X-Vist-Trace-Id`
/// wire form).
#[must_use]
pub fn format(id: u128) -> String {
    format!("{id:032x}")
}

/// Parse a hex trace id (1–32 digits, leading zeros optional,
/// surrounding whitespace ignored). `None` on empty or non-hex input.
#[must_use]
pub fn parse(s: &str) -> Option<u128> {
    let s = s.trim();
    if s.is_empty() || s.len() > 32 {
        return None;
    }
    u128::from_str_radix(s, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mint_is_unique_and_nonzero() {
        let a = mint();
        let b = mint();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn format_parse_roundtrip() {
        for id in [1u128, 0xdead_beef, u128::MAX, mint()] {
            let hex = format(id);
            assert_eq!(hex.len(), 32);
            assert_eq!(parse(&hex), Some(id));
        }
        assert_eq!(parse("  00ff  "), Some(255));
        assert_eq!(parse("ff"), Some(255));
        assert_eq!(parse(""), None);
        assert_eq!(parse("xyz"), None);
        assert_eq!(parse(&"f".repeat(33)), None);
    }
}
