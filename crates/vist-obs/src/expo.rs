//! Exposition renderers: Prometheus text format and JSON, both from a
//! registry [`Snapshot`]. Hand-rolled (no serde) to honor the crate's
//! zero-dependency rule.

use crate::metrics::{bucket_upper_bound, HistogramSnapshot, BUCKETS};
use crate::registry::{self, MetricValue, Snapshot};
use std::fmt::Write as _;

/// Escape a `# HELP` text per the Prometheus text-format grammar:
/// backslash and newline are the only escapable characters there.
fn help_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// The `# HELP` text for a metric: its registered description
/// ([`registry::describe`]) or generated fallback text.
fn help_for(name: &str, kind: &str) -> String {
    match registry::help_for(name) {
        Some(h) => help_escape(h),
        None => format!("ViST {kind} {name}."),
    }
}

/// Render a snapshot in the Prometheus text exposition format
/// (version 0.0.4): `# HELP` and `# TYPE` lines per family, cumulative
/// `_bucket{le="..."}` series ending in `le="+Inf"`, plus `_sum` and
/// `_count` for histograms. Metrics appear in name order.
#[must_use]
pub fn render_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.metrics {
        match value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "# HELP {name} {}", help_for(name, "counter"));
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{name} {v}");
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "# HELP {name} {}", help_for(name, "gauge"));
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(out, "{name} {v}");
            }
            MetricValue::Histogram(h) => {
                let _ = writeln!(out, "# HELP {name} {}", help_for(name, "histogram"));
                let _ = writeln!(out, "# TYPE {name} histogram");
                let mut cumulative = 0u64;
                for i in 0..BUCKETS {
                    cumulative += h.buckets[i];
                    // Skip interior empty buckets to keep the output
                    // readable; cumulative counts stay correct because
                    // an empty bucket adds nothing.
                    if h.buckets[i] == 0 {
                        continue;
                    }
                    let _ = writeln!(
                        out,
                        "{name}_bucket{{le=\"{}\"}} {cumulative}",
                        bucket_upper_bound(i)
                    );
                }
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
                let _ = writeln!(out, "{name}_sum {}", h.sum);
                let _ = writeln!(out, "{name}_count {}", h.count());
            }
        }
    }
    out
}

/// Escape a string for inclusion in a JSON string literal.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn histogram_json(h: &HistogramSnapshot) -> String {
    let mut out = String::from("{\"type\":\"histogram\"");
    let _ = write!(
        out,
        ",\"count\":{},\"sum\":{},\"p50\":{},\"p90\":{},\"p95\":{},\"p99\":{},\"p999\":{},\"max\":{}",
        h.count(),
        h.sum,
        h.p50(),
        h.p90(),
        h.p95(),
        h.p99(),
        h.p999(),
        h.max
    );
    let exemplar = h.exemplar(0.99);
    if exemplar != 0 {
        let _ = write!(
            out,
            ",\"p99_exemplar\":\"{}\"",
            crate::traceid::format(exemplar)
        );
    }
    out.push_str(",\"buckets\":[");
    let mut first = true;
    for i in 0..BUCKETS {
        if h.buckets[i] == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"le\":{},\"count\":{}}}",
            bucket_upper_bound(i),
            h.buckets[i]
        );
    }
    out.push_str("]}");
    out
}

/// Render a snapshot as a single JSON object keyed by metric name.
/// Counters and gauges render as `{"type":...,"value":N}`; histograms
/// include count/sum/quantiles and their non-empty buckets.
#[must_use]
pub fn render_json(snap: &Snapshot) -> String {
    let mut out = String::from("{");
    let mut first = true;
    for (name, value) in &snap.metrics {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\"{}\":", json_escape(name));
        match value {
            MetricValue::Counter(v) => {
                let _ = write!(out, "{{\"type\":\"counter\",\"value\":{v}}}");
            }
            MetricValue::Gauge(v) => {
                let _ = write!(out, "{{\"type\":\"gauge\",\"value\":{v}}}");
            }
            MetricValue::Histogram(h) => out.push_str(&histogram_json(h)),
        }
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Histogram;

    fn sample_snapshot() -> Snapshot {
        let h = Histogram::new();
        #[cfg(not(feature = "noop"))]
        {
            h.record(3);
            h.record(3);
            h.record(900);
        }
        Snapshot {
            metrics: vec![
                ("expo_a_total", MetricValue::Counter(42)),
                ("expo_b_level", MetricValue::Gauge(-7)),
                (
                    "expo_c_nanos",
                    MetricValue::Histogram(Box::new(h.snapshot())),
                ),
            ],
        }
    }

    #[test]
    #[cfg(not(feature = "noop"))]
    fn prometheus_text_shape() {
        let text = render_prometheus(&sample_snapshot());
        assert!(text.contains("# HELP expo_a_total "));
        assert!(text.contains("# TYPE expo_a_total counter\nexpo_a_total 42\n"));
        assert!(text.contains("# TYPE expo_b_level gauge\nexpo_b_level -7\n"));
        assert!(text.contains("# HELP expo_c_nanos "));
        assert!(text.contains("# TYPE expo_c_nanos histogram"));
        // 3 lands in bucket [2,4) with upper bound 3; 900 in [512,1024).
        assert!(text.contains("expo_c_nanos_bucket{le=\"3\"} 2"));
        assert!(text.contains("expo_c_nanos_bucket{le=\"1023\"} 3"));
        assert!(text.contains("expo_c_nanos_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("expo_c_nanos_sum 906"));
        assert!(text.contains("expo_c_nanos_count 3"));
    }

    #[test]
    #[cfg(not(feature = "noop"))]
    fn json_shape() {
        let json = render_json(&sample_snapshot());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"expo_a_total\":{\"type\":\"counter\",\"value\":42}"));
        assert!(json.contains("\"expo_b_level\":{\"type\":\"gauge\",\"value\":-7}"));
        assert!(json.contains("\"count\":3,\"sum\":906"));
        assert!(json.contains("{\"le\":3,\"count\":2}"));
        // Balanced braces/brackets — a cheap structural validity check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(help_escape("a\\b\nc"), "a\\\\b\\nc");
    }

    #[test]
    #[cfg(not(feature = "noop"))]
    fn described_help_text_is_used_and_escaped() {
        crate::registry::describe("expo_described_total", "multi\nline \\help");
        let snap = Snapshot {
            metrics: vec![("expo_described_total", MetricValue::Counter(1))],
        };
        let text = render_prometheus(&snap);
        assert!(
            text.contains("# HELP expo_described_total multi\\nline \\\\help\n"),
            "{text}"
        );
    }

    /// Is `s` a valid Prometheus metric name (`[a-zA-Z_:][a-zA-Z0-9_:]*`)?
    fn valid_metric_name(s: &str) -> bool {
        let mut chars = s.chars();
        matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':')
            && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }

    /// Parse one `{label="value",...}` block per the text-format
    /// grammar; returns false on any violation.
    fn valid_labels(s: &str) -> bool {
        let Some(inner) = s.strip_prefix('{').and_then(|s| s.strip_suffix('}')) else {
            return false;
        };
        for pair in inner.split(',') {
            let Some((name, value)) = pair.split_once('=') else {
                return false;
            };
            let mut chars = name.chars();
            let name_ok = matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
                && chars.all(|c| c.is_ascii_alphanumeric() || c == '_');
            if !name_ok {
                return false;
            }
            let Some(v) = value.strip_prefix('"').and_then(|v| v.strip_suffix('"')) else {
                return false;
            };
            // Inside a label value, `"`, `\` and newline must be escaped.
            let mut esc = false;
            for c in v.chars() {
                if esc {
                    if !matches!(c, '\\' | '"' | 'n') {
                        return false;
                    }
                    esc = false;
                } else if c == '\\' {
                    esc = true;
                } else if c == '"' || c == '\n' {
                    return false;
                }
            }
            if esc {
                return false;
            }
        }
        true
    }

    /// Line-by-line conformance check of real `/metrics` output against
    /// the text exposition grammar: every line is a `# HELP`, a
    /// `# TYPE`, or a sample whose family was announced by a preceding
    /// `# TYPE`; names and labels match the grammar; values parse.
    #[test]
    #[cfg(not(feature = "noop"))]
    fn prometheus_output_parses_against_the_grammar() {
        use std::collections::BTreeMap;
        // Real registered metrics (whatever other tests created) plus a
        // histogram guaranteed to have samples and a described counter.
        crate::registry::describe("expo_grammar_total", "Requests seen by the grammar test.");
        crate::registry::counter("expo_grammar_total").add(3);
        let h = crate::registry::histogram("expo_grammar_nanos");
        h.record(0);
        h.record(17);
        h.record(40_000);
        let text = render_prometheus(&crate::registry::snapshot());

        let mut types: BTreeMap<String, String> = BTreeMap::new();
        let mut samples = 0usize;
        for line in text.lines() {
            assert!(!line.is_empty(), "no blank lines in exposition");
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let (name, help) = rest.split_once(' ').expect("HELP has name and text");
                assert!(valid_metric_name(name), "bad HELP name {name:?}");
                assert!(!help.contains('\n'));
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let (name, kind) = rest.split_once(' ').expect("TYPE has name and kind");
                assert!(valid_metric_name(name), "bad TYPE name {name:?}");
                assert!(
                    matches!(kind, "counter" | "gauge" | "histogram"),
                    "bad kind {kind:?}"
                );
                types.insert(name.to_string(), kind.to_string());
                continue;
            }
            assert!(!line.starts_with('#'), "unknown comment: {line}");
            let (series, value) = line.rsplit_once(' ').expect("sample has name and value");
            let (name, labels) = match series.find('{') {
                Some(i) => (&series[..i], &series[i..]),
                None => (series, ""),
            };
            assert!(valid_metric_name(name), "bad sample name {name:?}");
            if !labels.is_empty() {
                assert!(valid_labels(labels), "bad labels in {line:?}");
            }
            assert!(
                value == "+Inf" || value.parse::<f64>().is_ok(),
                "bad value in {line:?}"
            );
            // Every sample belongs to an announced family.
            let family = ["_bucket", "_sum", "_count"]
                .iter()
                .find_map(|suf| {
                    name.strip_suffix(suf)
                        .filter(|base| types.get(*base).map(String::as_str) == Some("histogram"))
                })
                .unwrap_or(name);
            assert!(
                types.contains_key(family),
                "sample {name:?} has no preceding # TYPE"
            );
            samples += 1;
        }
        assert!(samples > 0, "exposition produced no samples");
        assert_eq!(types.get("expo_grammar_nanos").unwrap(), "histogram");
        assert!(text.contains("# HELP expo_grammar_total Requests seen by the grammar test.\n"));
    }
}
