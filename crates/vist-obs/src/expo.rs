//! Exposition renderers: Prometheus text format and JSON, both from a
//! registry [`Snapshot`]. Hand-rolled (no serde) to honor the crate's
//! zero-dependency rule.

use crate::metrics::{bucket_upper_bound, HistogramSnapshot, BUCKETS};
use crate::registry::{MetricValue, Snapshot};
use std::fmt::Write as _;

/// Render a snapshot in the Prometheus text exposition format
/// (version 0.0.4): `# TYPE` lines, cumulative `_bucket{le="..."}`
/// series ending in `le="+Inf"`, plus `_sum` and `_count` for
/// histograms. Metrics appear in name order.
#[must_use]
pub fn render_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.metrics {
        match value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{name} {v}");
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(out, "{name} {v}");
            }
            MetricValue::Histogram(h) => {
                let _ = writeln!(out, "# TYPE {name} histogram");
                let mut cumulative = 0u64;
                for i in 0..BUCKETS {
                    cumulative += h.buckets[i];
                    // Skip interior empty buckets to keep the output
                    // readable; cumulative counts stay correct because
                    // an empty bucket adds nothing.
                    if h.buckets[i] == 0 {
                        continue;
                    }
                    let _ = writeln!(
                        out,
                        "{name}_bucket{{le=\"{}\"}} {cumulative}",
                        bucket_upper_bound(i)
                    );
                }
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
                let _ = writeln!(out, "{name}_sum {}", h.sum);
                let _ = writeln!(out, "{name}_count {}", h.count());
            }
        }
    }
    out
}

/// Escape a string for inclusion in a JSON string literal.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn histogram_json(h: &HistogramSnapshot) -> String {
    let mut out = String::from("{\"type\":\"histogram\"");
    let _ = write!(
        out,
        ",\"count\":{},\"sum\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}",
        h.count(),
        h.sum,
        h.p50(),
        h.p90(),
        h.p99(),
        h.max
    );
    out.push_str(",\"buckets\":[");
    let mut first = true;
    for i in 0..BUCKETS {
        if h.buckets[i] == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"le\":{},\"count\":{}}}",
            bucket_upper_bound(i),
            h.buckets[i]
        );
    }
    out.push_str("]}");
    out
}

/// Render a snapshot as a single JSON object keyed by metric name.
/// Counters and gauges render as `{"type":...,"value":N}`; histograms
/// include count/sum/quantiles and their non-empty buckets.
#[must_use]
pub fn render_json(snap: &Snapshot) -> String {
    let mut out = String::from("{");
    let mut first = true;
    for (name, value) in &snap.metrics {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\"{}\":", json_escape(name));
        match value {
            MetricValue::Counter(v) => {
                let _ = write!(out, "{{\"type\":\"counter\",\"value\":{v}}}");
            }
            MetricValue::Gauge(v) => {
                let _ = write!(out, "{{\"type\":\"gauge\",\"value\":{v}}}");
            }
            MetricValue::Histogram(h) => out.push_str(&histogram_json(h)),
        }
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Histogram;

    fn sample_snapshot() -> Snapshot {
        let h = Histogram::new();
        #[cfg(not(feature = "noop"))]
        {
            h.record(3);
            h.record(3);
            h.record(900);
        }
        Snapshot {
            metrics: vec![
                ("expo_a_total", MetricValue::Counter(42)),
                ("expo_b_level", MetricValue::Gauge(-7)),
                (
                    "expo_c_nanos",
                    MetricValue::Histogram(Box::new(h.snapshot())),
                ),
            ],
        }
    }

    #[test]
    #[cfg(not(feature = "noop"))]
    fn prometheus_text_shape() {
        let text = render_prometheus(&sample_snapshot());
        assert!(text.contains("# TYPE expo_a_total counter\nexpo_a_total 42\n"));
        assert!(text.contains("# TYPE expo_b_level gauge\nexpo_b_level -7\n"));
        assert!(text.contains("# TYPE expo_c_nanos histogram"));
        // 3 lands in bucket [2,4) with upper bound 3; 900 in [512,1024).
        assert!(text.contains("expo_c_nanos_bucket{le=\"3\"} 2"));
        assert!(text.contains("expo_c_nanos_bucket{le=\"1023\"} 3"));
        assert!(text.contains("expo_c_nanos_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("expo_c_nanos_sum 906"));
        assert!(text.contains("expo_c_nanos_count 3"));
    }

    #[test]
    #[cfg(not(feature = "noop"))]
    fn json_shape() {
        let json = render_json(&sample_snapshot());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"expo_a_total\":{\"type\":\"counter\",\"value\":42}"));
        assert!(json.contains("\"expo_b_level\":{\"type\":\"gauge\",\"value\":-7}"));
        assert!(json.contains("\"count\":3,\"sum\":906"));
        assert!(json.contains("{\"le\":3,\"count\":2}"));
        // Balanced braces/brackets — a cheap structural validity check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
