//! Per-query I/O attribution.
//!
//! The registry's `vist_storage_*` counters are process-global: they say
//! the buffer pool missed, not *whose* query missed. Attribution closes
//! that gap with a thread-local context: the query layer allocates an
//! [`AttrCounters`] per request and [`install`]s it on the calling
//! thread; the match engine installs a clone of the same `Arc` on every
//! worker-pool thread it fans out to, so work that migrates between
//! workers through the stealing queue is still charged to the owning
//! query — propagation across steals is correct by construction, because
//! there is exactly one counter block per query no matter which thread
//! runs a frame. Storage-layer hot paths call the `charge_*` free
//! functions right next to the registry counters they mirror, so summing
//! per-query attribution over a workload must equal the registry deltas
//! (a differential test in `vist-core` holds this invariant).
//!
//! Cost model: a charge is one thread-local borrow plus a relaxed
//! `fetch_add` when a context is installed, and a borrow + branch when
//! not. Under the `noop` feature everything — the thread-local included —
//! compiles out; [`install`] returns an inert guard and [`current`] is
//! always `None`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[cfg(not(feature = "noop"))]
use std::cell::RefCell;

/// Atomic I/O counters for one query. Shared (`Arc`) between the query
/// layer and every worker thread serving that query.
#[derive(Debug, Default)]
pub struct AttrCounters {
    pool_hits: AtomicU64,
    pool_misses: AtomicU64,
    pages_read: AtomicU64,
    bytes_read: AtomicU64,
    wal_appends: AtomicU64,
}

impl AttrCounters {
    /// A fresh zeroed counter block, ready to [`install`].
    #[must_use]
    pub fn new() -> Arc<AttrCounters> {
        Arc::new(AttrCounters::default())
    }

    /// Point-in-time copy of the counters.
    #[must_use]
    pub fn snapshot(&self) -> AttrSnapshot {
        AttrSnapshot {
            pool_hits: self.pool_hits.load(Ordering::Relaxed),
            pool_misses: self.pool_misses.load(Ordering::Relaxed),
            pages_read: self.pages_read.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            wal_appends: self.wal_appends.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of one query's attributed I/O.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AttrSnapshot {
    /// Buffer-pool hits charged to this query.
    pub pool_hits: u64,
    /// Buffer-pool misses charged to this query.
    pub pool_misses: u64,
    /// Pages read from the backing file for this query.
    pub pages_read: u64,
    /// Bytes read from the backing file for this query.
    pub bytes_read: u64,
    /// WAL appends issued while this query's context was installed.
    pub wal_appends: u64,
}

impl AttrSnapshot {
    /// `(counter name, value)` pairs in declaration order, for slow-log
    /// and wide-event rendering.
    #[must_use]
    pub fn entries(&self) -> [(&'static str, u64); 5] {
        [
            ("pool_hits", self.pool_hits),
            ("pool_misses", self.pool_misses),
            ("pages_read", self.pages_read),
            ("bytes_read", self.bytes_read),
            ("wal_appends", self.wal_appends),
        ]
    }
}

#[cfg(not(feature = "noop"))]
thread_local! {
    static CURRENT: RefCell<Option<Arc<AttrCounters>>> = const { RefCell::new(None) };
}

/// Guard returned by [`install`]; restores the thread's previous
/// attribution context (if any) on drop. `!Send` by construction.
pub struct AttrGuard {
    #[cfg(not(feature = "noop"))]
    prev: Option<Arc<AttrCounters>>,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for AttrGuard {
    fn drop(&mut self) {
        #[cfg(not(feature = "noop"))]
        CURRENT.with(|c| {
            *c.borrow_mut() = self.prev.take();
        });
    }
}

/// Install `ctx` as the current thread's attribution context until the
/// returned guard drops. Nested installs stack: the guard restores
/// whatever was installed before.
#[must_use]
pub fn install(ctx: Arc<AttrCounters>) -> AttrGuard {
    #[cfg(feature = "noop")]
    {
        let _ = ctx;
        AttrGuard {
            _not_send: std::marker::PhantomData,
        }
    }
    #[cfg(not(feature = "noop"))]
    {
        let prev = CURRENT.with(|c| c.borrow_mut().replace(ctx));
        AttrGuard {
            prev,
            _not_send: std::marker::PhantomData,
        }
    }
}

/// The current thread's attribution context, if one is installed.
/// Worker-pool fan-out captures this before spawning and installs a
/// clone on each worker.
#[must_use]
pub fn current() -> Option<Arc<AttrCounters>> {
    #[cfg(feature = "noop")]
    return None;
    #[cfg(not(feature = "noop"))]
    CURRENT.with(|c| c.borrow().clone())
}

#[cfg(not(feature = "noop"))]
#[inline]
fn with_current(f: impl FnOnce(&AttrCounters)) {
    CURRENT.with(|c| {
        if let Some(ctx) = c.borrow().as_deref() {
            f(ctx);
        }
    });
}

/// Charge one buffer-pool hit to the current query, if any.
#[inline]
pub fn charge_pool_hit() {
    #[cfg(not(feature = "noop"))]
    with_current(|c| {
        c.pool_hits.fetch_add(1, Ordering::Relaxed);
    });
}

/// Charge one buffer-pool miss to the current query, if any.
#[inline]
pub fn charge_pool_miss() {
    #[cfg(not(feature = "noop"))]
    with_current(|c| {
        c.pool_misses.fetch_add(1, Ordering::Relaxed);
    });
}

/// Charge one page read of `bytes` bytes to the current query, if any.
#[inline]
pub fn charge_page_read(bytes: u64) {
    #[cfg(feature = "noop")]
    let _ = bytes;
    #[cfg(not(feature = "noop"))]
    with_current(|c| {
        c.pages_read.fetch_add(1, Ordering::Relaxed);
        c.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    });
}

/// Charge one WAL append to the current query, if any.
#[inline]
pub fn charge_wal_append() {
    #[cfg(not(feature = "noop"))]
    with_current(|c| {
        c.wal_appends.fetch_add(1, Ordering::Relaxed);
    });
}

#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use super::*;

    #[test]
    fn charges_go_to_installed_context_only() {
        charge_pool_hit(); // no context: must not panic, charges nowhere
        let ctx = AttrCounters::new();
        {
            let _g = install(Arc::clone(&ctx));
            charge_pool_hit();
            charge_pool_miss();
            charge_page_read(4096);
            charge_wal_append();
        }
        charge_pool_hit(); // after the guard: charges nowhere again
        let s = ctx.snapshot();
        assert_eq!(
            s,
            AttrSnapshot {
                pool_hits: 1,
                pool_misses: 1,
                pages_read: 1,
                bytes_read: 4096,
                wal_appends: 1,
            }
        );
    }

    #[test]
    fn installs_nest_and_restore() {
        let outer = AttrCounters::new();
        let inner = AttrCounters::new();
        let _a = install(Arc::clone(&outer));
        {
            let _b = install(Arc::clone(&inner));
            charge_page_read(10);
            assert!(Arc::ptr_eq(&current().unwrap(), &inner));
        }
        charge_page_read(20);
        assert!(Arc::ptr_eq(&current().unwrap(), &outer));
        assert_eq!(inner.snapshot().bytes_read, 10);
        assert_eq!(outer.snapshot().bytes_read, 20);
    }

    #[test]
    fn shared_arc_sums_across_threads() {
        let ctx = AttrCounters::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let ctx = Arc::clone(&ctx);
                s.spawn(move || {
                    let _g = install(ctx);
                    for _ in 0..100 {
                        charge_pool_hit();
                    }
                });
            }
        });
        assert_eq!(ctx.snapshot().pool_hits, 400);
    }
}
