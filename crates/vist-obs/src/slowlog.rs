//! Slow-query log: an in-process ring buffer of the most recent queries
//! that exceeded a configurable latency threshold.
//!
//! The log is process-global and bounded ([`CAPACITY`] entries); a new
//! slow query evicts the oldest. Recording takes one mutex acquisition
//! on an already-slow path, so it never contends with fast queries.
//! The threshold defaults to [`DEFAULT_THRESHOLD_NANOS`] and can be
//! lowered to 0 to capture everything (used by `vist profile`).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Maximum retained entries; older entries are evicted.
pub const CAPACITY: usize = 128;

/// Default slow threshold: 50ms.
pub const DEFAULT_THRESHOLD_NANOS: u64 = 50_000_000;

/// One recorded slow query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowQuery {
    /// Trace id of the request (0 when the query ran without one); the
    /// key into [`crate::tracez`] for the retained span tree.
    pub trace_id: u128,
    /// The query text as given to the engine.
    pub query: String,
    /// Worker threads the match engine ran with.
    pub workers: usize,
    /// Total wall time of the query.
    pub total_nanos: u64,
    /// `(stage name, nanos)` in execution order.
    pub stages: Vec<(&'static str, u64)>,
    /// `(counter name, delta)` — engine counter movement attributable to
    /// this query (e.g. nodes visited, scans performed).
    pub counters: Vec<(&'static str, u64)>,
}

struct SlowLog {
    threshold_nanos: AtomicU64,
    entries: Mutex<VecDeque<SlowQuery>>,
}

fn global() -> &'static SlowLog {
    static LOG: OnceLock<SlowLog> = OnceLock::new();
    LOG.get_or_init(|| SlowLog {
        threshold_nanos: AtomicU64::new(DEFAULT_THRESHOLD_NANOS),
        entries: Mutex::new(VecDeque::with_capacity(CAPACITY)),
    })
}

/// Set the slow threshold in nanoseconds (0 records every query).
pub fn set_threshold_nanos(nanos: u64) {
    global().threshold_nanos.store(nanos, Ordering::Relaxed);
}

/// Current slow threshold in nanoseconds.
#[must_use]
pub fn threshold_nanos() -> u64 {
    global().threshold_nanos.load(Ordering::Relaxed)
}

/// Record `entry` if it is at or over the threshold. Returns whether it
/// was recorded. A no-op under the `noop` feature.
pub fn record(entry: SlowQuery) -> bool {
    #[cfg(feature = "noop")]
    {
        let _ = entry;
        false
    }
    #[cfg(not(feature = "noop"))]
    {
        if entry.total_nanos < threshold_nanos() {
            return false;
        }
        let mut entries = global().entries.lock().unwrap();
        if entries.len() == CAPACITY {
            entries.pop_front();
        }
        entries.push_back(entry);
        true
    }
}

/// Copy of the current entries, oldest first.
#[must_use]
pub fn entries() -> Vec<SlowQuery> {
    global().entries.lock().unwrap().iter().cloned().collect()
}

/// Drop all entries (used between profiling runs and in tests).
pub fn clear() {
    global().entries.lock().unwrap().clear();
}

#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    // The log is process-global; serialize tests that use it.
    static LOG_TESTS: StdMutex<()> = StdMutex::new(());

    fn q(name: &str, nanos: u64) -> SlowQuery {
        SlowQuery {
            trace_id: 7,
            query: name.to_owned(),
            workers: 1,
            total_nanos: nanos,
            stages: vec![("match", nanos)],
            counters: vec![("nodes_visited", 7)],
        }
    }

    #[test]
    fn threshold_filters_and_ring_evicts() {
        let _g = LOG_TESTS.lock().unwrap();
        clear();
        set_threshold_nanos(1_000);
        assert!(!record(q("fast", 999)));
        assert!(record(q("slow", 1_000)));
        for i in 0..CAPACITY {
            assert!(record(q(&format!("q{i}"), 2_000)));
        }
        let entries = entries();
        assert_eq!(entries.len(), CAPACITY);
        // "slow" was evicted by the flood; oldest survivor is q0.
        assert_eq!(entries[0].query, "q0");
        assert_eq!(entries.last().unwrap().query, format!("q{}", CAPACITY - 1));
        clear();
        set_threshold_nanos(DEFAULT_THRESHOLD_NANOS);
    }

    #[test]
    fn zero_threshold_records_everything() {
        let _g = LOG_TESTS.lock().unwrap();
        clear();
        set_threshold_nanos(0);
        assert!(record(q("any", 0)));
        assert_eq!(entries().len(), 1);
        clear();
        set_threshold_nanos(DEFAULT_THRESHOLD_NANOS);
    }
}
