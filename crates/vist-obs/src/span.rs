//! Hierarchical span tracing.
//!
//! A [`Trace`] bounds one traced operation (e.g. one query); [`Span`]
//! guards mark phases inside it. Spans nest by construction order on
//! the current thread and close on drop, producing a tree of
//! `(name, duration)` nodes. Same-name siblings are merged (durations
//! summed, counts added) so loops produce one aggregate node instead of
//! thousands.
//!
//! Cost model: when tracing is disabled (the default) every entry point
//! is a single relaxed `AtomicBool` load — no clock read, no
//! allocation. When enabled, spans record into a thread-local
//! collector; threads other than the one that opened the [`Trace`]
//! have no active collector and their spans are inert. Enabling
//! tracing is process-wide ([`set_tracing`]).

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

static TRACING: AtomicBool = AtomicBool::new(false);

/// Turn span collection on or off process-wide.
pub fn set_tracing(on: bool) {
    TRACING.store(on, Ordering::Relaxed);
}

/// Whether span collection is currently on.
#[inline]
#[must_use]
pub fn tracing_enabled() -> bool {
    #[cfg(feature = "noop")]
    return false;
    #[cfg(not(feature = "noop"))]
    TRACING.load(Ordering::Relaxed)
}

/// One node of a finished span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Phase name, as passed to [`Span::enter`].
    pub name: &'static str,
    /// Total time spent in this phase (summed over merged siblings).
    pub nanos: u64,
    /// How many same-name sibling spans were merged into this node.
    pub count: u64,
    /// Child phases, in first-entry order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    fn new(name: &'static str) -> Self {
        SpanNode {
            name,
            nanos: 0,
            count: 0,
            children: Vec::new(),
        }
    }

    /// Merge a closed child into this node's children, combining with an
    /// existing same-name sibling if present.
    fn absorb(&mut self, child: SpanNode) {
        if let Some(existing) = self.children.iter_mut().find(|c| c.name == child.name) {
            existing.nanos += child.nanos;
            existing.count += child.count;
            for grand in child.children {
                existing.absorb(grand);
            }
        } else {
            self.children.push(child);
        }
    }

    /// Merge `child` into this node's children — the public form of the
    /// collector's sibling-merging rule, for grafting externally built
    /// nodes (e.g. per-worker aggregates) onto a tree.
    pub fn merge_child(&mut self, child: SpanNode) {
        self.absorb(child);
    }

    /// Sum of direct children's durations.
    #[must_use]
    pub fn child_nanos(&self) -> u64 {
        self.children.iter().map(|c| c.nanos).sum()
    }

    /// Render the tree as a JSON object:
    /// `{"name":...,"nanos":...,"count":...,"children":[...]}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.json_into(&mut out);
        out
    }

    fn json_into(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"nanos\":{},\"count\":{},\"children\":[",
            crate::expo::json_escape(self.name),
            self.nanos,
            self.count
        ));
        for (i, child) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            child.json_into(out);
        }
        out.push_str("]}");
    }

    /// Render the tree as indented text, one node per line:
    /// `name  <duration>  (xN)` with an `(xN)` suffix for merged nodes
    /// and a final `(other)` line when children don't account for the
    /// parent's full duration.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(self.name);
        out.push_str("  ");
        out.push_str(&format_nanos(self.nanos));
        if self.count > 1 {
            out.push_str(&format!("  (x{})", self.count));
        }
        out.push('\n');
        for child in &self.children {
            child.render_into(out, depth + 1);
        }
        if !self.children.is_empty() {
            let child_sum = self.child_nanos();
            if child_sum < self.nanos {
                for _ in 0..=depth {
                    out.push_str("  ");
                }
                out.push_str("(other)  ");
                out.push_str(&format_nanos(self.nanos - child_sum));
                out.push('\n');
            }
        }
    }
}

/// Format a nanosecond duration for humans: `137ns`, `42.5µs`, `3.21ms`, `1.75s`.
#[must_use]
pub fn format_nanos(n: u64) -> String {
    if n < 1_000 {
        format!("{n}ns")
    } else if n < 1_000_000 {
        format!("{:.1}µs", n as f64 / 1e3)
    } else if n < 1_000_000_000 {
        format!("{:.2}ms", n as f64 / 1e6)
    } else {
        format!("{:.2}s", n as f64 / 1e9)
    }
}

struct Collector {
    /// Stack of open spans; index 0 is the root. Closing a span pops it
    /// and absorbs it into its parent.
    stack: Vec<(SpanNode, Instant)>,
}

thread_local! {
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

/// Root guard for one traced operation. While alive, [`Span`]s on this
/// thread record into its tree; dropping it yields nothing (use
/// [`Trace::finish`] to take the tree).
pub struct Trace {
    // !Send by construction (thread-local collector); keep it that way.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Trace {
    /// Start a trace rooted at `name` if tracing is enabled and no trace
    /// is already active on this thread; otherwise `None`.
    #[must_use]
    pub fn begin(name: &'static str) -> Option<Trace> {
        if !tracing_enabled() {
            return None;
        }
        COLLECTOR.with(|c| {
            let mut slot = c.borrow_mut();
            if slot.is_some() {
                return None;
            }
            *slot = Some(Collector {
                stack: vec![(SpanNode::new(name), Instant::now())],
            });
            Some(Trace {
                _not_send: std::marker::PhantomData,
            })
        })
    }

    /// Close the trace and return the finished span tree. Any spans left
    /// open (e.g. after an early return with live guards — impossible
    /// with lexically scoped guards) are closed as of now.
    #[must_use]
    pub fn finish(self) -> SpanNode {
        COLLECTOR.with(|c| {
            let mut slot = c.borrow_mut();
            let mut collector = slot.take().expect("trace collector present until finish");
            while collector.stack.len() > 1 {
                let (mut node, started) = collector.stack.pop().unwrap();
                node.nanos += started.elapsed().as_nanos() as u64;
                node.count += 1;
                collector.stack.last_mut().unwrap().0.absorb(node);
            }
            let (mut root, started) = collector.stack.pop().unwrap();
            root.nanos = started.elapsed().as_nanos() as u64;
            root.count = 1;
            root
        })
    }
}

impl Drop for Trace {
    fn drop(&mut self) {
        // finish() takes the collector out first; only an unfinished
        // (dropped) trace still owns it here.
        COLLECTOR.with(|c| {
            c.borrow_mut().take();
        });
    }
}

/// Graft an externally built span node into the innermost open span of
/// the active trace on this thread. Worker threads have no collector of
/// their own, so the match engine aggregates their timings into
/// [`SpanNode`]s and attaches them here from the coordinating thread.
/// A no-op when tracing is off or no trace is active.
pub fn attach(node: SpanNode) {
    if !tracing_enabled() {
        return;
    }
    COLLECTOR.with(|c| {
        if let Some(collector) = c.borrow_mut().as_mut() {
            if let Some((top, _)) = collector.stack.last_mut() {
                top.absorb(node);
            }
        }
    });
}

/// Scoped phase guard. Construct with [`Span::enter`]; the phase closes
/// when the guard drops.
pub struct Span {
    live: bool,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Span {
    /// Open a phase named `name`. A no-op guard (one atomic load) when
    /// tracing is off or no [`Trace`] is active on this thread.
    #[inline]
    #[must_use]
    pub fn enter(name: &'static str) -> Span {
        if !tracing_enabled() {
            return Span {
                live: false,
                _not_send: std::marker::PhantomData,
            };
        }
        let live = COLLECTOR.with(|c| {
            let mut slot = c.borrow_mut();
            match slot.as_mut() {
                Some(collector) => {
                    collector.stack.push((SpanNode::new(name), Instant::now()));
                    true
                }
                None => false,
            }
        });
        Span {
            live,
            _not_send: std::marker::PhantomData,
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        COLLECTOR.with(|c| {
            let mut slot = c.borrow_mut();
            if let Some(collector) = slot.as_mut() {
                // Guards drop in reverse construction order, so the top
                // of the stack is this span (unless the trace finished
                // early, in which case the collector is gone).
                if collector.stack.len() > 1 {
                    let (mut node, started) = collector.stack.pop().unwrap();
                    node.nanos += started.elapsed().as_nanos() as u64;
                    node.count += 1;
                    collector.stack.last_mut().unwrap().0.absorb(node);
                }
            }
        });
    }
}

#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // TRACING is process-global; serialize the tests that toggle it.
    static TRACE_TESTS: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_tracing_yields_no_trace() {
        let _g = TRACE_TESTS.lock().unwrap();
        set_tracing(false);
        assert!(Trace::begin("op").is_none());
        let _s = Span::enter("phase"); // must be inert, not panic
    }

    #[test]
    fn spans_nest_and_merge() {
        let _g = TRACE_TESTS.lock().unwrap();
        set_tracing(true);
        let trace = Trace::begin("query").expect("tracing on");
        {
            let _a = Span::enter("parse");
        }
        for _ in 0..3 {
            let _b = Span::enter("probe");
            let _c = Span::enter("scan");
        }
        let root = trace.finish();
        set_tracing(false);

        assert_eq!(root.name, "query");
        let names: Vec<_> = root.children.iter().map(|c| c.name).collect();
        assert_eq!(names, vec!["parse", "probe"]);
        let probe = &root.children[1];
        assert_eq!(probe.count, 3, "same-name siblings merge");
        assert_eq!(probe.children.len(), 1);
        assert_eq!(probe.children[0].name, "scan");
        assert_eq!(probe.children[0].count, 3);
        // Children can't outlast the root.
        assert!(root.child_nanos() <= root.nanos);
        let rendered = root.render();
        assert!(rendered.contains("query"));
        assert!(rendered.contains("(x3)"));
    }

    #[test]
    fn attach_grafts_into_the_open_span() {
        let _g = TRACE_TESTS.lock().unwrap();
        set_tracing(true);
        let trace = Trace::begin("query").expect("tracing on");
        {
            let _m = Span::enter("match");
            for i in 0..2 {
                attach(SpanNode {
                    name: "worker",
                    nanos: 100 + i,
                    count: 1,
                    children: Vec::new(),
                });
            }
        }
        let root = trace.finish();
        set_tracing(false);
        let m = &root.children[0];
        assert_eq!(m.name, "match");
        assert_eq!(m.children.len(), 1, "same-name workers merge");
        assert_eq!(m.children[0].name, "worker");
        assert_eq!(m.children[0].count, 2);
        assert_eq!(m.children[0].nanos, 201);
        let json = root.to_json();
        assert!(json.contains("\"name\":\"worker\""), "{json}");
        assert!(json.contains("\"count\":2"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn nested_trace_begin_is_refused() {
        let _g = TRACE_TESTS.lock().unwrap();
        set_tracing(true);
        let outer = Trace::begin("outer").expect("tracing on");
        assert!(Trace::begin("inner").is_none());
        let _ = outer.finish();
        set_tracing(false);
    }

    #[test]
    fn format_nanos_units() {
        assert_eq!(format_nanos(137), "137ns");
        assert_eq!(format_nanos(42_500), "42.5µs");
        assert_eq!(format_nanos(3_210_000), "3.21ms");
        assert_eq!(format_nanos(1_750_000_000), "1.75s");
    }
}
