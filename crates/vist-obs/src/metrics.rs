//! Atomic metric primitives: counters, gauges, and log-bucketed histograms.
//!
//! All primitives are lock-free and use `Relaxed` atomic ordering: each
//! metric is an independent statistical accumulator, never a
//! synchronization point, so no ordering edge with surrounding code is
//! needed or implied (see `docs/CONCURRENCY.md`, "Observability atomics").
//! Snapshots are therefore *per-metric* consistent, not cross-metric
//! consistent.
//!
//! With the `noop` cargo feature every mutation compiles to nothing; the
//! types keep their size and API so instrumented code builds unchanged.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::percentile;

/// Number of power-of-two histogram buckets. Bucket 0 counts the value 0;
/// bucket `i >= 1` counts values in `[2^(i-1), 2^i)`. The last bucket also
/// absorbs everything at or above `2^(BUCKETS-2)` (≈ 2.4 hours when the
/// unit is nanoseconds).
pub const BUCKETS: usize = 44;

/// A monotonically increasing `u64` counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    #[must_use]
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(not(feature = "noop"))]
        self.0.fetch_add(n, Ordering::Relaxed);
        #[cfg(feature = "noop")]
        let _ = n;
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed gauge: a value that goes up and down (sizes, depths, levels).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge starting at zero.
    #[must_use]
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Replace the value.
    #[inline]
    pub fn set(&self, v: i64) {
        #[cfg(not(feature = "noop"))]
        self.0.store(v, Ordering::Relaxed);
        #[cfg(feature = "noop")]
        let _ = v;
    }

    /// Add `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        #[cfg(not(feature = "noop"))]
        self.0.fetch_add(n, Ordering::Relaxed);
        #[cfg(feature = "noop")]
        let _ = n;
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A histogram over `u64` values with power-of-two buckets.
///
/// Recording is three relaxed `fetch_add`s plus one relaxed `fetch_max` —
/// cheap enough for hot paths (B+Tree probes, page reads). Quantiles are
/// estimated from the bucket boundaries (each reported quantile is the
/// *upper bound* of the bucket containing it, so estimates are
/// conservative within a factor of two); the maximum is exact.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
    /// Last trace id observed per bucket (0 = none). Behind a mutex:
    /// exemplars are recorded per *request*, not per probe, so the lock
    /// never sits on an engine hot path.
    exemplars: Mutex<[u128; BUCKETS]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for a value: 0 for 0, else `floor(log2(v)) + 1`, capped.
#[inline]
#[cfg_attr(feature = "noop", allow(dead_code))]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Inclusive upper bound of a bucket (`2^i - 1`; bucket 0 holds only 0).
#[must_use]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            exemplars: Mutex::new([0; BUCKETS]),
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        #[cfg(not(feature = "noop"))]
        {
            self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
            self.max.fetch_max(v, Ordering::Relaxed);
        }
        #[cfg(feature = "noop")]
        let _ = v;
    }

    /// Record one observation and remember `trace_id` as the bucket's
    /// exemplar, so a quantile estimate can be resolved to the retained
    /// trace (see [`crate::tracez`]) that landed in its bucket last.
    /// Zero trace ids record the value but leave the exemplar alone.
    #[inline]
    pub fn record_with_exemplar(&self, v: u64, trace_id: u128) {
        self.record(v);
        #[cfg(not(feature = "noop"))]
        if trace_id != 0 {
            self.exemplars.lock().unwrap_or_else(|e| e.into_inner())[bucket_of(v)] = trace_id;
        }
        #[cfg(feature = "noop")]
        let _ = trace_id;
    }

    /// A point-in-time copy of the bucket counts and aggregates.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let exemplars = *self.exemplars.lock().unwrap_or_else(|e| e.into_inner());
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            exemplars,
        }
    }
}

/// Immutable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`BUCKETS`] for the layout).
    pub buckets: [u64; BUCKETS],
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest recorded value (exact).
    pub max: u64,
    /// Last trace id observed per bucket (0 = none recorded).
    pub exemplars: [u128; BUCKETS],
}

impl HistogramSnapshot {
    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Index of the bucket containing the `q`-quantile's nearest rank
    /// (see [`crate::percentile::rank`]); `None` when empty.
    #[must_use]
    pub fn quantile_bucket(&self, q: f64) -> Option<usize> {
        let rank = percentile::rank(q, self.count());
        if rank == 0 {
            return None;
        }
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(i);
            }
        }
        None
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0 ..= 1.0`): the upper
    /// bound of the first bucket whose cumulative count reaches the
    /// shared nearest rank, clamped to the exact maximum. Zero when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        match self.quantile_bucket(q) {
            Some(i) => bucket_upper_bound(i).min(self.max),
            None => 0,
        }
    }

    /// The exemplar trace id of the bucket containing the `q`-quantile
    /// (0 when empty or no exemplar was recorded in that bucket). A p99
    /// spike resolves through this id to a retained trace in
    /// [`crate::tracez`].
    #[must_use]
    pub fn exemplar(&self, q: f64) -> u128 {
        self.quantile_bucket(q).map_or(0, |i| self.exemplars[i])
    }

    /// Median estimate (see [`HistogramSnapshot::quantile`]).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    #[must_use]
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 95th-percentile estimate.
    #[must_use]
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th-percentile estimate.
    #[must_use]
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Mean of recorded values (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum as f64 / c as f64
        }
    }
}

#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn bucket_layout() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(3), 7);
    }

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.max, 1000);
        assert_eq!(s.sum, 500_500);
        // The true p50 is 500; the estimate is the containing bucket's
        // upper bound, so within [500, 1023].
        let p50 = s.p50();
        assert!((500..=1023).contains(&p50), "p50 = {p50}");
        assert!(s.p99() >= 990);
        assert!(s.quantile(1.0) == 1000, "max quantile is exact");
        assert!((s.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn p95_p999_use_the_shared_rank() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // Nearest rank 950 lands in bucket [512, 1024); estimate is its
        // upper bound clamped to the exact max.
        assert_eq!(s.p95(), 1000);
        assert_eq!(s.p999(), 1000);
        assert!(s.p50() <= s.p90() && s.p90() <= s.p95());
        assert!(s.p95() <= s.p99() && s.p99() <= s.p999());
    }

    #[test]
    fn exemplars_track_the_last_trace_per_bucket() {
        let h = Histogram::new();
        h.record_with_exemplar(3, 0xAA); // bucket [2,4)
        h.record_with_exemplar(3, 0xBB); // same bucket: last wins
        h.record_with_exemplar(900, 0xCC); // bucket [512,1024)
        h.record_with_exemplar(901, 0); // zero id leaves exemplar alone
        let s = h.snapshot();
        assert_eq!(s.exemplars[bucket_of(3)], 0xBB);
        assert_eq!(s.exemplars[bucket_of(900)], 0xCC);
        // The p99 of this sample sits in the 900s bucket: its exemplar
        // is the handle back to the retained trace.
        assert_eq!(s.exemplar(0.99), 0xCC);
        assert_eq!(Histogram::new().snapshot().exemplar(0.99), 0);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn zero_values_land_in_bucket_zero() {
        let h = Histogram::new();
        h.record(0);
        h.record(0);
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 2);
        assert_eq!(s.p50(), 0);
    }
}
