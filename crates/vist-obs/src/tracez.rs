//! Tracez-style trace retention: a bounded store of finished span trees
//! keyed by trace id.
//!
//! Two retention policies run side by side:
//!
//! - **Head sampling** — every `sample_every`-th finished trace lands in
//!   a FIFO ring of [`RECENT_CAPACITY`] entries (default: every trace,
//!   so a freshly returned trace id is resolvable until the ring wraps).
//! - **Always-keep-slowest** — the [`SLOWEST_CAPACITY`] slowest traces
//!   seen so far are kept regardless of sampling, so the trace behind a
//!   p99 spike survives long after the ring has wrapped past it.
//!
//! Histogram exemplars (see [`crate::metrics::Histogram`]) record the
//! last trace id per latency bucket; resolving an exemplar here links a
//! quantile estimate directly to the span tree that produced it.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::span::SpanNode;

/// Head-sampled ring capacity.
pub const RECENT_CAPACITY: usize = 128;

/// Always-retained slowest-trace capacity.
pub const SLOWEST_CAPACITY: usize = 16;

/// One retained trace: the finished span tree plus identifying context.
#[derive(Debug, Clone)]
pub struct RetainedTrace {
    /// The request's trace id.
    pub trace_id: u128,
    /// Human label — the query expression or background-op name.
    pub label: String,
    /// Total wall time (the root span's duration).
    pub total_nanos: u64,
    /// The finished span tree.
    pub root: SpanNode,
}

struct State {
    recent: VecDeque<RetainedTrace>,
    slowest: Vec<RetainedTrace>,
    seen: u64,
}

struct Tracez {
    sample_every: AtomicU64,
    state: Mutex<State>,
}

fn global() -> &'static Tracez {
    static TRACEZ: OnceLock<Tracez> = OnceLock::new();
    TRACEZ.get_or_init(|| Tracez {
        sample_every: AtomicU64::new(1),
        state: Mutex::new(State {
            recent: VecDeque::with_capacity(RECENT_CAPACITY),
            slowest: Vec::with_capacity(SLOWEST_CAPACITY),
            seen: 0,
        }),
    })
}

/// Keep every `n`-th trace in the recent ring (minimum 1 = keep all).
/// The slowest set is unaffected by sampling.
pub fn set_sample_every(n: u64) {
    global().sample_every.store(n.max(1), Ordering::Relaxed);
}

/// Retain one finished trace. A no-op under the `noop` feature.
pub fn record(trace_id: u128, label: String, total_nanos: u64, root: SpanNode) {
    #[cfg(feature = "noop")]
    {
        let _ = (trace_id, label, total_nanos, root);
    }
    #[cfg(not(feature = "noop"))]
    {
        let t = RetainedTrace {
            trace_id,
            label,
            total_nanos,
            root,
        };
        let every = global().sample_every.load(Ordering::Relaxed);
        let mut st = global().state.lock().unwrap_or_else(|e| e.into_inner());
        st.seen += 1;
        if st.seen.is_multiple_of(every) {
            if st.recent.len() == RECENT_CAPACITY {
                st.recent.pop_front();
            }
            st.recent.push_back(t.clone());
        }
        let qualifies = st.slowest.len() < SLOWEST_CAPACITY
            || st
                .slowest
                .last()
                .is_some_and(|s| t.total_nanos > s.total_nanos);
        if qualifies {
            st.slowest.push(t);
            st.slowest.sort_by_key(|s| std::cmp::Reverse(s.total_nanos));
            st.slowest.truncate(SLOWEST_CAPACITY);
        }
    }
}

/// Look up a retained trace by id (newest match wins).
#[must_use]
pub fn get(trace_id: u128) -> Option<RetainedTrace> {
    let st = global().state.lock().unwrap_or_else(|e| e.into_inner());
    st.recent
        .iter()
        .rev()
        .find(|t| t.trace_id == trace_id)
        .or_else(|| st.slowest.iter().find(|t| t.trace_id == trace_id))
        .cloned()
}

/// The always-retained slowest traces, slowest first.
#[must_use]
pub fn slowest() -> Vec<RetainedTrace> {
    global()
        .state
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .slowest
        .clone()
}

/// The head-sampled recent ring, oldest first.
#[must_use]
pub fn recent() -> Vec<RetainedTrace> {
    global()
        .state
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .recent
        .iter()
        .cloned()
        .collect()
}

/// Drop everything (tests and profiling runs).
pub fn clear() {
    let mut st = global().state.lock().unwrap_or_else(|e| e.into_inner());
    st.recent.clear();
    st.slowest.clear();
    st.seen = 0;
}

#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    // The store is process-global; serialize tests that use it.
    static TRACEZ_TESTS: StdMutex<()> = StdMutex::new(());

    fn node(nanos: u64) -> SpanNode {
        SpanNode {
            name: "query",
            nanos,
            count: 1,
            children: Vec::new(),
        }
    }

    #[test]
    fn recent_ring_wraps_but_slowest_survive() {
        let _g = TRACEZ_TESTS.lock().unwrap();
        clear();
        set_sample_every(1);
        // One early, very slow trace...
        record(42, "slowpoke".into(), 1_000_000, node(1_000_000));
        // ...then a flood of fast ones that wraps the ring.
        for i in 0..(RECENT_CAPACITY as u64 + 10) {
            record(1000 + u128::from(i), format!("fast{i}"), 10 + i, node(10));
        }
        assert!(
            !recent().iter().any(|t| t.trace_id == 42),
            "ring wrapped past the slow trace"
        );
        let got = get(42).expect("slowest retention kept it");
        assert_eq!(got.label, "slowpoke");
        assert_eq!(got.root.name, "query");
        assert_eq!(slowest()[0].trace_id, 42);
        clear();
    }

    #[test]
    fn head_sampling_thins_the_ring() {
        let _g = TRACEZ_TESTS.lock().unwrap();
        clear();
        set_sample_every(4);
        for i in 0..16u64 {
            record(u128::from(i) + 1, format!("q{i}"), 100, node(100));
        }
        assert_eq!(recent().len(), 4, "every 4th trace sampled");
        set_sample_every(1);
        clear();
    }

    #[test]
    fn missing_id_is_none() {
        let _g = TRACEZ_TESTS.lock().unwrap();
        clear();
        assert!(get(9999).is_none());
    }
}
