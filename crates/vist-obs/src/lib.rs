//! Zero-dependency observability substrate for ViST.
//!
//! Three facilities, all process-global and thread-safe:
//!
//! - **Metrics registry** ([`registry`], [`metrics`], [`expo`]): named
//!   atomic counters, gauges, and log₂-bucketed latency histograms
//!   (p50/p90/p99/max), rendered as Prometheus text or JSON. Register
//!   once, mutate lock-free on hot paths via the [`counter!`],
//!   [`gauge!`], and [`histogram!`] macros, which cache the `&'static`
//!   handle per call site.
//! - **Span tracing** ([`span`]): `Span::enter("phase")` guards build a
//!   hierarchical timing tree for one operation when tracing is on; a
//!   single relaxed `AtomicBool` load when it is off.
//! - **Slow-query log** ([`slowlog`]): a bounded ring buffer of recent
//!   queries over a latency threshold, with stage timings and counter
//!   deltas.
//!
//! Request-scoped telemetry builds on those three:
//!
//! - **Trace ids** ([`traceid`]): 128-bit per-request ids minted at the
//!   serve front-end (or accepted from clients) and carried through
//!   every layer.
//! - **I/O attribution** ([`attr`]): a thread-local context that charges
//!   buffer-pool and WAL activity to the owning query, including across
//!   worker-pool work-stealing.
//! - **Wide events** ([`wide`]): one JSON line per request or background
//!   op, in a bounded ring plus an optional rotating access-log file.
//! - **Trace retention** ([`tracez`]): head-sampled plus
//!   always-keep-slowest span trees, resolvable by trace id; histogram
//!   buckets carry the last trace id as an exemplar.
//! - **Shared percentiles** ([`percentile`]): the one nearest-rank rule
//!   behind both histogram estimates and exact benchmark quantiles.
//!
//! Registry values are *process-lifetime*: they keep accumulating
//! across index close/reopen, unlike `IndexStats` which is since-open.
//!
//! The `noop` cargo feature compiles every mutation, clock read, and
//! span to nothing, so benchmarks can compare the instrumented default
//! build against a genuinely uninstrumented build of identical engine
//! code (see `BENCH_obs_overhead.json`).

pub mod attr;
pub mod expo;
pub mod metrics;
pub mod percentile;
pub mod registry;
pub mod slowlog;
pub mod span;
pub mod traceid;
pub mod tracez;
pub mod wide;

pub use attr::{AttrCounters, AttrGuard, AttrSnapshot};
pub use expo::{json_escape, render_json, render_prometheus};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{counter, describe, gauge, histogram, snapshot, MetricValue, Snapshot};
pub use slowlog::SlowQuery;
pub use span::{format_nanos, set_tracing, tracing_enabled, Span, SpanNode, Trace};
pub use tracez::RetainedTrace;
pub use wide::WideEvent;

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Gates clock reads for latency histograms. On by default; turn off to
/// shed even the `Instant::now()` cost while keeping event counters.
static TIMING: AtomicBool = AtomicBool::new(true);

/// Enable or disable latency timing (clock reads) process-wide.
/// Counters and gauges are unaffected.
pub fn set_timing(on: bool) {
    TIMING.store(on, Ordering::Relaxed);
}

/// Whether latency timing is currently enabled.
#[inline]
#[must_use]
pub fn timing_enabled() -> bool {
    #[cfg(feature = "noop")]
    return false;
    #[cfg(not(feature = "noop"))]
    TIMING.load(Ordering::Relaxed)
}

/// Read the clock if timing is enabled. Pair with [`observe_since`]:
///
/// ```
/// let t = vist_obs::now();
/// // ... the operation being timed ...
/// vist_obs::observe_since(vist_obs::histogram("doc_example_nanos"), t);
/// ```
#[inline]
#[must_use]
pub fn now() -> Option<Instant> {
    if timing_enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Elapsed nanoseconds since `start`, saturating at `u64::MAX`; `None`
/// if timing was off at the start.
#[inline]
#[must_use]
pub fn elapsed_nanos(start: Option<Instant>) -> Option<u64> {
    start.map(|t| u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX))
}

/// Record the time since `start` (from [`now`]) into `hist`, if timing
/// was on when `start` was taken.
#[inline]
pub fn observe_since(hist: &Histogram, start: Option<Instant>) {
    if let Some(nanos) = elapsed_nanos(start) {
        hist.record(nanos);
    }
}

/// A named counter, registered once per call site and cached in a
/// `OnceLock` — subsequent hits are a pointer load plus the atomic add.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Counter> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::registry::counter($name))
    }};
}

/// A named gauge, cached per call site like [`counter!`].
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Gauge> = ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::registry::gauge($name))
    }};
}

/// A named histogram, cached per call site like [`counter!`].
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::registry::histogram($name))
    }};
}

#[cfg(test)]
mod tests {
    #[test]
    fn macros_cache_the_handle() {
        let a = counter!("lib_macro_total");
        let b = counter!("lib_macro_total");
        assert!(std::ptr::eq(a, b));
        gauge!("lib_macro_level").set(1);
        histogram!("lib_macro_nanos").record(5);
    }

    #[test]
    #[cfg(not(feature = "noop"))]
    fn timing_gate() {
        crate::set_timing(true);
        assert!(crate::now().is_some());
        crate::set_timing(false);
        assert!(crate::now().is_none());
        crate::set_timing(true);
    }
}
