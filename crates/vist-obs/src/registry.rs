//! Process-wide metrics registry.
//!
//! Metrics are registered by name once and live for the rest of the
//! process (`&'static` handles via `Box::leak`), so hot-path code pays
//! only the atomic mutation — name lookup happens once per call site
//! (call sites cache the handle in a `OnceLock`, see the `counter!` /
//! `gauge!` / `histogram!` macros in the crate root).
//!
//! Naming convention: `vist_<crate>_<subject>_<unit>` — e.g.
//! `vist_storage_page_read_nanos`, `vist_btree_probe_depth`,
//! `vist_core_query_total`. Names must match
//! `[a-zA-Z_:][a-zA-Z0-9_:]*` (the Prometheus metric-name grammar);
//! registration panics otherwise, which surfaces typos at first use in
//! tests rather than as silently unscrapable metrics.
//!
//! Registry counters are **process-lifetime**: unlike `IndexStats`
//! (which is rebuilt from a freshly opened index and therefore resets
//! on every `open()`), registry values keep accumulating across
//! close/reopen cycles within one process.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

/// The global registry: name → metric, ordered by name so every
/// exposition and snapshot is deterministically sorted.
struct Registry {
    metrics: Mutex<BTreeMap<&'static str, Metric>>,
}

fn global() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        metrics: Mutex::new(BTreeMap::new()),
    })
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn register_with<T, F>(name: &str, make: F, select: fn(&Metric) -> Option<&'static T>) -> &'static T
where
    F: FnOnce() -> Metric,
{
    assert!(
        valid_name(name),
        "metric name {name:?} is not a valid Prometheus metric name"
    );
    let mut metrics = global().metrics.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(existing) = metrics.get(name) {
        return select(existing)
            .unwrap_or_else(|| panic!("metric {name:?} already registered with a different type"));
    }
    let metric = make();
    let out = select(&metric).expect("freshly made metric matches its own type");
    metrics.insert(Box::leak(name.to_owned().into_boxed_str()), metric);
    out
}

/// Get or create the named counter. Panics if `name` is already
/// registered as a different metric type or is not a valid name.
pub fn counter(name: &str) -> &'static Counter {
    register_with(
        name,
        || Metric::Counter(Box::leak(Box::new(Counter::new()))),
        |m| match m {
            Metric::Counter(c) => Some(c),
            _ => None,
        },
    )
}

/// Get or create the named gauge. Panics on name/type conflicts.
pub fn gauge(name: &str) -> &'static Gauge {
    register_with(
        name,
        || Metric::Gauge(Box::leak(Box::new(Gauge::new()))),
        |m| match m {
            Metric::Gauge(g) => Some(g),
            _ => None,
        },
    )
}

/// Get or create the named histogram. Panics on name/type conflicts.
pub fn histogram(name: &str) -> &'static Histogram {
    register_with(
        name,
        || Metric::Histogram(Box::leak(Box::new(Histogram::new()))),
        |m| match m {
            Metric::Histogram(h) => Some(h),
            _ => None,
        },
    )
}

fn help_table() -> &'static Mutex<BTreeMap<&'static str, &'static str>> {
    static HELP: OnceLock<Mutex<BTreeMap<&'static str, &'static str>>> = OnceLock::new();
    HELP.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Attach a `# HELP` text to a metric name for Prometheus exposition.
/// Undescribed metrics get generated help; describing twice keeps the
/// latest text.
pub fn describe(name: &'static str, help: &'static str) {
    help_table()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(name, help);
}

/// The help text registered for `name`, if any.
#[must_use]
pub fn help_for(name: &str) -> Option<&'static str> {
    help_table()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .get(name)
        .copied()
}

/// A point-in-time value of one registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram bucket snapshot (boxed: the bucket array dwarfs the
    /// scalar variants).
    Histogram(Box<HistogramSnapshot>),
}

/// A sorted point-in-time copy of every registered metric.
///
/// Values are read one metric at a time with relaxed loads, so the
/// snapshot is per-metric consistent only.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` pairs sorted by name.
    pub metrics: Vec<(&'static str, MetricValue)>,
}

impl Snapshot {
    /// Look up one metric by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics
            .binary_search_by(|(n, _)| (*n).cmp(name))
            .ok()
            .map(|i| &self.metrics[i].1)
    }

    /// Counter value by name (0 if absent or not a counter).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }
}

/// Snapshot every registered metric, sorted by name.
#[must_use]
pub fn snapshot() -> Snapshot {
    let metrics = global().metrics.lock().unwrap_or_else(|e| e.into_inner());
    Snapshot {
        metrics: metrics
            .iter()
            .map(|(name, m)| {
                let v = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(Box::new(h.snapshot())),
                };
                (*name, v)
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent_and_snapshot_sorted() {
        let a = counter("test_registry_alpha_total");
        let b = counter("test_registry_alpha_total");
        assert!(std::ptr::eq(a, b));
        a.inc();
        gauge("test_registry_beta_level").set(3);
        histogram("test_registry_gamma_nanos").record(100);
        let snap = snapshot();
        let names: Vec<_> = snap.metrics.iter().map(|(n, _)| *n).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        #[cfg(not(feature = "noop"))]
        {
            assert!(snap.counter("test_registry_alpha_total") >= 1);
            assert_eq!(
                snap.get("test_registry_beta_level"),
                Some(&MetricValue::Gauge(3))
            );
        }
        assert!(matches!(
            snap.get("test_registry_gamma_nanos"),
            Some(MetricValue::Histogram(_))
        ));
        assert_eq!(snap.get("test_registry_missing"), None);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_conflict_panics() {
        counter("test_registry_conflict");
        gauge("test_registry_conflict");
    }

    #[test]
    #[should_panic(expected = "not a valid Prometheus metric name")]
    fn bad_name_panics() {
        counter("has space");
    }
}
