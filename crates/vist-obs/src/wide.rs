//! Wide events: one structured JSON line per unit of work.
//!
//! A wide event is the single place everything known about one request
//! (or one background operation) lands: trace id, peer, admission wait,
//! plan summary, stage timings, attribution counters, outcome. Events go
//! to a bounded in-process ring (always, for `/debug` inspection) and
//! optionally to an append-only access-log file with size-based
//! rotation (`vist serve --access-log <path>`).
//!
//! Rotation: when appending a line would push the file past the
//! configured byte cap, the current file is renamed to `<path>.1`
//! (replacing any previous `.1`) and a fresh file is started — at most
//! two generations ever exist on disk.
//!
//! Under the `noop` feature [`WideEvent::emit`] compiles to nothing.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};

use crate::expo::json_escape;

/// Events retained in the in-process ring.
pub const RING_CAPACITY: usize = 256;

/// Default access-log rotation threshold (16 MiB).
pub const DEFAULT_MAX_LOG_BYTES: u64 = 16 * 1024 * 1024;

/// Builder for one wide event. Fields render in insertion order; the
/// `event` kind is always first.
#[derive(Debug)]
pub struct WideEvent {
    buf: String,
}

impl WideEvent {
    /// Start an event of the given kind (e.g. `"query"`, `"compaction"`).
    #[must_use]
    pub fn new(kind: &str) -> WideEvent {
        let mut buf = String::with_capacity(256);
        let _ = write!(buf, "{{\"event\":\"{}\"", json_escape(kind));
        WideEvent { buf }
    }

    /// Add a string field (JSON-escaped).
    #[must_use]
    pub fn str_field(mut self, key: &str, value: &str) -> Self {
        let _ = write!(
            self.buf,
            ",\"{}\":\"{}\"",
            json_escape(key),
            json_escape(value)
        );
        self
    }

    /// Add an unsigned integer field.
    #[must_use]
    pub fn u64_field(mut self, key: &str, value: u64) -> Self {
        let _ = write!(self.buf, ",\"{}\":{}", json_escape(key), value);
        self
    }

    /// Add a pre-rendered JSON value (object, array, number...). The
    /// caller is responsible for `value` being valid JSON.
    #[must_use]
    pub fn raw_field(mut self, key: &str, value: &str) -> Self {
        let _ = write!(self.buf, ",\"{}\":{}", json_escape(key), value);
        self
    }

    /// Finish the event as one JSON line (no trailing newline).
    #[must_use]
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }

    /// Finish and record the event into the ring and file sink.
    /// A no-op under the `noop` feature.
    pub fn emit(self) {
        #[cfg(not(feature = "noop"))]
        emit_line(self.finish());
    }
}

struct FileSink {
    path: PathBuf,
    max_bytes: u64,
    file: File,
    written: u64,
}

#[derive(Default)]
struct Sink {
    ring: VecDeque<String>,
    file: Option<FileSink>,
}

fn global() -> &'static Mutex<Sink> {
    static SINK: OnceLock<Mutex<Sink>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Sink::default()))
}

/// Record one already-rendered event line.
pub fn emit_line(line: String) {
    let mut sink = global().lock().unwrap_or_else(|e| e.into_inner());
    if sink.ring.len() == RING_CAPACITY {
        sink.ring.pop_front();
    }
    if let Some(fs) = sink.file.as_mut() {
        if fs.written + line.len() as u64 + 1 > fs.max_bytes && fs.written > 0 {
            let rotated =
                fs.path
                    .with_extension(match fs.path.extension().and_then(|e| e.to_str()) {
                        Some(ext) => format!("{ext}.1"),
                        None => "1".to_string(),
                    });
            let _ = std::fs::rename(&fs.path, rotated);
            if let Ok(f) = File::create(&fs.path) {
                fs.file = f;
                fs.written = 0;
            }
        }
        if fs.file.write_all(line.as_bytes()).is_ok() && fs.file.write_all(b"\n").is_ok() {
            fs.written += line.len() as u64 + 1;
        }
    }
    sink.ring.push_back(line);
}

/// Start appending events to `path`, rotating at `max_bytes`
/// (0 means [`DEFAULT_MAX_LOG_BYTES`]).
pub fn set_file_sink(path: &str, max_bytes: u64) -> std::io::Result<()> {
    let file = OpenOptions::new().create(true).append(true).open(path)?;
    let written = file.metadata().map_or(0, |m| m.len());
    let mut sink = global().lock().unwrap_or_else(|e| e.into_inner());
    sink.file = Some(FileSink {
        path: PathBuf::from(path),
        max_bytes: if max_bytes == 0 {
            DEFAULT_MAX_LOG_BYTES
        } else {
            max_bytes
        },
        file,
        written,
    });
    Ok(())
}

/// Stop writing events to a file (the ring keeps recording).
pub fn clear_file_sink() {
    global().lock().unwrap_or_else(|e| e.into_inner()).file = None;
}

/// Copy of the ring, oldest first.
#[must_use]
pub fn recent() -> Vec<String> {
    global()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .ring
        .iter()
        .cloned()
        .collect()
}

/// Drop all ring entries (tests).
pub fn clear() {
    global()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .ring
        .clear();
}

#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    // The sink is process-global; serialize tests that use it.
    static SINK_TESTS: StdMutex<()> = StdMutex::new(());

    #[test]
    fn builder_renders_one_json_line() {
        let line = WideEvent::new("query")
            .str_field("trace_id", "00ff")
            .u64_field("total_nanos", 1234)
            .str_field("expr", "/a\"b")
            .raw_field("stages", "{\"plan\":5}")
            .finish();
        assert_eq!(
            line,
            "{\"event\":\"query\",\"trace_id\":\"00ff\",\"total_nanos\":1234,\
             \"expr\":\"/a\\\"b\",\"stages\":{\"plan\":5}}"
        );
        assert!(!line.contains('\n'));
    }

    #[test]
    fn ring_bounds_and_orders_events() {
        let _g = SINK_TESTS.lock().unwrap();
        clear();
        clear_file_sink();
        for i in 0..RING_CAPACITY + 3 {
            WideEvent::new("e").u64_field("i", i as u64).emit();
        }
        let got = recent();
        assert_eq!(got.len(), RING_CAPACITY);
        assert!(got[0].contains("\"i\":3"), "oldest evicted: {}", got[0]);
        assert!(got
            .last()
            .unwrap()
            .contains(&format!("\"i\":{}", RING_CAPACITY + 2)));
        clear();
    }

    #[test]
    fn file_sink_rotates_at_cap() {
        let _g = SINK_TESTS.lock().unwrap();
        clear();
        let dir = std::env::temp_dir().join(format!("vist_wide_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("access.log");
        let path_s = path.to_str().unwrap();
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(dir.join("access.log.1"));

        set_file_sink(path_s, 200).unwrap();
        for i in 0..12 {
            // ~40 bytes per line: the 200-byte cap forces rotation.
            WideEvent::new("rot").u64_field("seq", i).emit();
        }
        clear_file_sink();

        let current = std::fs::read_to_string(&path).unwrap();
        let rotated = std::fs::read_to_string(dir.join("access.log.1")).unwrap();
        assert!(current.len() as u64 <= 200);
        for part in [&current, &rotated] {
            for line in part.lines() {
                assert!(line.starts_with("{\"event\":\"rot\""), "{line}");
                assert!(line.ends_with('}'), "{line}");
            }
        }
        // The newest line is in the current file, not the rotated one.
        assert!(current.contains("\"seq\":11"));
        let _ = std::fs::remove_dir_all(&dir);
        clear();
    }
}
