//! Shared nearest-rank percentile arithmetic.
//!
//! The workspace has two percentile consumers — the log₂-bucketed
//! [`HistogramSnapshot`](crate::HistogramSnapshot) estimates and
//! `bench-serve`'s exact sorted-sample quantiles — and both reduce to
//! the same nearest-rank rule: the `q`-quantile of `n` observations is
//! the observation at 1-based rank `clamp(ceil(q * n), 1, n)`. This
//! module is the single definition of that rule so the two can never
//! drift apart again.

/// 1-based nearest rank of the `q`-quantile over `count` observations
/// (`0.0 ..= 1.0`). Zero when `count` is zero.
#[must_use]
pub fn rank(q: f64, count: u64) -> u64 {
    if count == 0 {
        return 0;
    }
    ((q * count as f64).ceil() as u64).clamp(1, count)
}

/// Exact nearest-rank quantile of an ascending-sorted sample; zero when
/// the sample is empty.
#[must_use]
pub fn nearest_rank(sorted: &[u64], q: f64) -> u64 {
    match rank(q, sorted.len() as u64) {
        0 => 0,
        r => sorted[(r - 1) as usize],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_is_clamped_and_one_based() {
        assert_eq!(rank(0.5, 0), 0);
        assert_eq!(rank(0.0, 10), 1);
        assert_eq!(rank(1.0, 10), 10);
        assert_eq!(rank(0.5, 100), 50);
        assert_eq!(rank(0.99, 100), 99);
        assert_eq!(rank(0.999, 100), 100);
        assert_eq!(rank(0.999, 1), 1);
    }

    #[test]
    fn nearest_rank_matches_bench_serve_semantics() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(nearest_rank(&v, 0.50), 50);
        assert_eq!(nearest_rank(&v, 0.95), 95);
        assert_eq!(nearest_rank(&v, 0.99), 99);
        assert_eq!(nearest_rank(&v, 0.999), 100);
        assert_eq!(nearest_rank(&[], 0.5), 0);
        assert_eq!(nearest_rank(&[7], 0.999), 7);
    }
}
