//! The `vist` command-line tool: create, populate, query, and maintain
//! ViST index files. Run `vist help` for usage.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match vist::cli::parse_args(&args).and_then(vist::cli::run) {
        // print_stdout exits 0 quietly when the reader hung up
        // (`vist query ... | head` must not panic on BrokenPipe).
        Ok(out) => vist::cli::print_stdout(&out),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
