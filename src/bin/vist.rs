//! The `vist` command-line tool: create, populate, query, and maintain
//! ViST index files. Run `vist help` for usage.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match vist::cli::parse_args(&args).and_then(vist::cli::run) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
