//! Implementation of the `vist` command-line tool (see `src/bin/vist.rs`).
//!
//! Kept in the library so argument parsing and command execution are unit
//! testable without spawning processes.

use std::fmt::Write as _;
use std::path::PathBuf;

use crate::{IndexOptions, QueryOptions, VistIndex};

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `vist create <index> [--page-size N] [--lambda N] [--no-docs]`
    Create {
        /// Index file path.
        index: PathBuf,
        /// Page size in bytes.
        page_size: usize,
        /// Scope-allocation λ.
        lambda: u64,
        /// Whether to store original documents.
        store_documents: bool,
    },
    /// `vist add <index> <xml-file>...`
    Add {
        /// Index file path.
        index: PathBuf,
        /// XML files, each holding one document.
        files: Vec<PathBuf>,
    },
    /// `vist query <index> <expr> [--verify] [--show] [--workers N] [--trace]
    /// [--no-plan] [--limit N] [--deadline-ms N]`
    Query {
        /// Index file path.
        index: PathBuf,
        /// Path expression.
        expr: String,
        /// Post-filter through the exact matcher.
        verify: bool,
        /// Print matching documents' XML, not just ids.
        show: bool,
        /// Match-engine worker threads (1 = serial).
        workers: usize,
        /// Print the hierarchical span tree of the query's execution.
        trace: bool,
        /// Disable the cost-based planner (naive order, for bisection).
        no_plan: bool,
        /// Stop after this many matching documents.
        limit: Option<usize>,
        /// Cooperative cancellation budget in milliseconds.
        deadline_ms: Option<u64>,
    },
    /// `vist load <index> <dir|file.xml> [--ingest-threads N] [--batch-size B]`
    Load {
        /// Index file path.
        index: PathBuf,
        /// A directory of `*.xml` files (loaded in sorted name order) or a
        /// single XML file.
        input: PathBuf,
        /// `Some(n)`: route through `insert_batch` with `n` parallel
        /// prepare workers (dynamic inserts, group-committed per batch)
        /// instead of `bulk_build`'s packed segment.
        ingest_threads: Option<usize>,
        /// Documents per group commit when `ingest_threads` is set.
        batch_size: usize,
    },
    /// `vist compact <index>`
    Compact {
        /// Index file path.
        index: PathBuf,
    },
    /// `vist remove <index> <doc-id>`
    Remove {
        /// Index file path.
        index: PathBuf,
        /// Document to remove.
        doc_id: u64,
    },
    /// `vist explain <index> <expr> [--workers N] [--plan] [--no-plan]`
    Explain {
        /// Index file path.
        index: PathBuf,
        /// Path expression.
        expr: String,
        /// Match-engine worker threads (1 = serial).
        workers: usize,
        /// Show the planner report (estimated vs actual cardinalities per
        /// step, chosen DocId strategy).
        plan: bool,
        /// Disable the cost-based planner (naive order).
        no_plan: bool,
    },
    /// `vist list <index>`
    List {
        /// Index file path.
        index: PathBuf,
    },
    /// `vist stats <index> [--format human|json|prometheus]`
    Stats {
        /// Index file path.
        index: PathBuf,
        /// Output format.
        format: StatsFormat,
    },
    /// `vist profile <index> <queries-file> [--workers N] [--slow-ms N]`
    Profile {
        /// Index file path.
        index: PathBuf,
        /// File with one path expression per line (`#` comments allowed).
        queries: PathBuf,
        /// Match-engine worker threads (1 = serial).
        workers: usize,
        /// Slow-query log threshold in milliseconds (0 records every query).
        slow_ms: u64,
    },
    /// `vist rebuild <index> <dst>`
    Rebuild {
        /// Source index file.
        index: PathBuf,
        /// Destination index file.
        dst: PathBuf,
    },
    /// `vist check <index>`
    Check {
        /// Index file path.
        index: PathBuf,
    },
    /// `vist recover <index>`
    Recover {
        /// Index file path.
        index: PathBuf,
    },
    /// `vist sim [--seed N] [--ops N] [--seconds N] [--replay FILE]
    /// [--out FILE] [--page-size N] [--lambda N] [--mutate MODE] [--dump]`
    Sim {
        /// Workload seed (single-run mode).
        seed: u64,
        /// Ops per generated trace.
        ops: usize,
        /// Time-boxed mode: run seeds `seed, seed+1, ...` for this many
        /// seconds (output is not byte-reproducible across hosts).
        seconds: Option<u64>,
        /// Replay a serialized trace instead of generating one.
        replay: Option<PathBuf>,
        /// Where to write the minimized reproducer on divergence.
        out: Option<PathBuf>,
        /// Page size override (seeded pick when absent).
        page_size: Option<usize>,
        /// Scope-allocation λ override (seeded pick when absent).
        lambda: Option<u64>,
        /// Planted bug to validate the harness (`scope-off-by-one`).
        mutate: vist_sim::SimMutation,
        /// Print the full generated trace, not just its digest.
        dump: bool,
    },
    /// `vist serve <index> [--addr H:P] [--max-inflight N] [--queue-depth N]
    /// [--query-workers N] [--max-deadline-ms N] [--drain-deadline-ms N]
    /// [--slow-ms N] [--access-log FILE]`
    Serve {
        /// Index file path.
        index: PathBuf,
        /// Bind address (`host:port`; port 0 picks a free port).
        addr: String,
        /// Concurrent query slots.
        max_inflight: usize,
        /// Bounded admission queue depth (waiters beyond it are shed).
        queue_depth: usize,
        /// Match-engine workers per query.
        query_workers: usize,
        /// Hard cap on any query's deadline budget.
        max_deadline_ms: u64,
        /// How long SIGTERM waits for in-flight queries.
        drain_deadline_ms: u64,
        /// Slow-query log threshold in ms (0 keeps the 50ms default).
        slow_ms: u64,
        /// Wide-event access log path (one JSON line per request).
        access_log: Option<PathBuf>,
    },
    /// `vist traces [--addr H:P] [<trace-id>]`
    Traces {
        /// Server address whose `/debug/traces` endpoint to query.
        addr: String,
        /// Resolve one 32-hex-digit trace id to its span tree instead
        /// of listing the retained traces.
        id: Option<String>,
    },
    /// `vist bench-serve [--addr H:P] [--expr E] [--deadline-ms N]
    /// [--clients N] [--burst-clients N] [--duration-ms N] [--smoke]
    /// [--out FILE]`
    BenchServe {
        /// Server address to load.
        addr: String,
        /// Query expression every client sends.
        expr: String,
        /// Per-request client deadline (0 = server cap).
        deadline_ms: u32,
        /// Clients in the loaded phase.
        clients: Option<usize>,
        /// Clients in the overload burst (size ≥ 4× server capacity).
        burst_clients: Option<usize>,
        /// Per-phase duration override.
        duration_ms: Option<u64>,
        /// CI smoke mode: short phases, assert shed responses appear.
        smoke: bool,
        /// Write the JSON report (`BENCH_serve.json`) here.
        out: Option<PathBuf>,
    },
    /// `vist help`
    Help,
}

/// Output format for `vist stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StatsFormat {
    /// The stable, human-readable key/value listing.
    #[default]
    Human,
    /// The `vist-obs` metrics registry as a JSON document.
    Json,
    /// The `vist-obs` metrics registry in Prometheus text exposition
    /// format.
    Prometheus,
}

impl std::str::FromStr for StatsFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "human" => Ok(StatsFormat::Human),
            "json" => Ok(StatsFormat::Json),
            "prometheus" => Ok(StatsFormat::Prometheus),
            other => Err(format!(
                "bad --format '{other}' (expected human, json or prometheus)"
            )),
        }
    }
}

/// Usage text.
pub const USAGE: &str = "\
vist — index and query XML documents by tree structure (SIGMOD'03 ViST)

USAGE:
  vist create  <index> [--page-size N] [--lambda N] [--no-docs]
  vist add     <index> <file.xml>...
  vist load    <index> <dir|file.xml> [--ingest-threads N] [--batch-size B]
  vist compact <index>
  vist query   <index> '<expr>' [--verify] [--show] [--workers N] [--trace]
               [--no-plan] [--limit N] [--deadline-ms N]
  vist remove  <index> <doc-id>
  vist explain <index> '<expr>' [--workers N] [--plan] [--no-plan]
  vist list    <index>
  vist stats   <index> [--format human|json|prometheus]
  vist profile <index> <queries-file> [--workers N] [--slow-ms N]
  vist rebuild <index> <dst>
  vist check   <index>
  vist recover <index>
  vist sim     [--seed N] [--ops N] [--seconds N] [--replay FILE] [--out FILE]
               [--page-size N] [--lambda N] [--mutate scope-off-by-one] [--dump]
  vist serve   <index> [--addr H:P] [--max-inflight N] [--queue-depth N]
               [--query-workers N] [--max-deadline-ms N] [--drain-deadline-ms N]
               [--slow-ms N] [--access-log FILE]
  vist traces  [--addr H:P] [<trace-id>]
  vist bench-serve [--addr H:P] [--expr E] [--deadline-ms N] [--clients N]
               [--burst-clients N] [--duration-ms N] [--smoke] [--out FILE]

SERVING (see docs/SERVING.md):
  serve                length-prefixed binary protocol + HTTP shim (/query,
                       /metrics, /healthz) over one shared index; overload is
                       shed with OVERLOADED/429 + retry-after, every query's
                       deadline is capped by --max-deadline-ms, and SIGTERM
                       drains in-flight queries then flushes and exits 0
  bench-serve          closed-loop load generator: uncontended baseline,
                       capacity load, then an overload burst; reports exact
                       p50/p95/p99/p999 latencies and shed rate as JSON
  query --deadline-ms  cooperative per-query budget: past it the engine stops
                       at the next work-item and reports 'deadline exceeded'

SIMULATION (deterministic model-checked workloads):
  sim --seed N         one seeded run: generated op trace, fault schedule and
                       match-engine interleaving are a pure function of the
                       seed; output is byte-identical across runs. On
                       divergence the op trace is delta-debug shrunk and the
                       minimal reproducer is written to --out (exit 1).
  sim --seconds N      smoke mode: consecutive seeds until the budget is spent
  sim --replay FILE    re-run a reproducer produced by --out / tests/seeds/

QUERY PLANNING (ViST §3.4 statistical clues):
  query --no-plan      bypass the cost-based planner: sequences run in naive
                       translation order with no empty-prefix short-circuits
  query --limit N      stop after N matching documents (early termination)
  explain --plan       per-tier planner report: sequence ranks and prunes,
                       estimated vs actual cardinalities per step, and the
                       chosen DocId resolution strategy

OBSERVABILITY (see docs/OBSERVABILITY.md):
  query --trace        print the hierarchical span tree of one execution
  stats --format       emit the process-wide metrics registry (counters,
                       gauges, latency histograms with p50/p90/p95/p99/p999
                       and trace-id exemplars) as JSON or Prometheus text
  profile              replay a query workload and print a per-query latency
                       table with stage timings, plus the slow-query log
  serve --access-log   one wide-event JSON line per request (trace id, peer,
                       admission wait, stage timings, attributed I/O,
                       outcome), size-rotated at 16 MiB
  serve --slow-ms      slow-query log threshold for served queries
  traces               fetch a server's retained traces (/debug/traces):
                       head-sampled recent ring + always-kept slowest; pass a
                       trace id (every response carries one, header
                       X-Vist-Trace-Id over HTTP) for its full span tree

TIERED STORAGE (see docs/SEGMENTS.md):
  load                 bulk-load a batch through external sort into one
                       immutable packed segment (~100% leaf fill) instead of
                       the per-document dynamic insert path
  load --ingest-threads N
                       dynamic-insert the corpus instead: N parallel prepare
                       workers (parse + structure-encode), serialized apply,
                       one group commit (one WAL fsync) per --batch-size B
                       documents (default 512); identical ids and answers to
                       one-at-a-time inserts, batches all-or-nothing on crash
  compact              merge the delta and all segments into one fresh
                       segment, dropping deleted documents for good

QUERY EXPRESSIONS (the paper's Table 3 subset):
  /book/author                       child paths
  //item[location='US']              descendant steps + value predicates
  /site//person/*/city[text='X']     wildcards
  /a[b/c='1'][text='t']/d            branches
";

/// Parse `args` (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let sub = it.next().map(String::as_str).unwrap_or("help");
    let mut rest: Vec<&String> = it.collect();

    let take_flag = |rest: &mut Vec<&String>, flag: &str| -> bool {
        if let Some(pos) = rest.iter().position(|a| *a == flag) {
            rest.remove(pos);
            true
        } else {
            false
        }
    };
    let take_opt = |rest: &mut Vec<&String>, flag: &str| -> Result<Option<String>, String> {
        if let Some(pos) = rest.iter().position(|a| *a == flag) {
            if pos + 1 >= rest.len() {
                return Err(format!("{flag} needs a value"));
            }
            let v = rest[pos + 1].clone();
            rest.drain(pos..=pos + 1);
            Ok(Some(v))
        } else {
            Ok(None)
        }
    };

    match sub {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "create" => {
            let page_size = take_opt(&mut rest, "--page-size")?
                .map(|v| v.parse().map_err(|_| "bad --page-size".to_string()))
                .transpose()?
                .unwrap_or(4096);
            let lambda = take_opt(&mut rest, "--lambda")?
                .map(|v| v.parse().map_err(|_| "bad --lambda".to_string()))
                .transpose()?
                .unwrap_or(16);
            let store_documents = !take_flag(&mut rest, "--no-docs");
            let [index] = rest.as_slice() else {
                return Err("create: expected exactly one index path".into());
            };
            Ok(Command::Create {
                index: PathBuf::from(index),
                page_size,
                lambda,
                store_documents,
            })
        }
        "add" => {
            if rest.len() < 2 {
                return Err("add: expected an index path and at least one XML file".into());
            }
            let index = PathBuf::from(rest[0]);
            let files = rest[1..].iter().map(PathBuf::from).collect();
            Ok(Command::Add { index, files })
        }
        "query" => {
            let verify = take_flag(&mut rest, "--verify");
            let show = take_flag(&mut rest, "--show");
            let trace = take_flag(&mut rest, "--trace");
            let no_plan = take_flag(&mut rest, "--no-plan");
            let workers = take_opt(&mut rest, "--workers")?
                .map(|v| v.parse().map_err(|_| "bad --workers".to_string()))
                .transpose()?
                .unwrap_or(1);
            let limit = take_opt(&mut rest, "--limit")?
                .map(|v| v.parse().map_err(|_| "bad --limit".to_string()))
                .transpose()?;
            let deadline_ms = take_opt(&mut rest, "--deadline-ms")?
                .map(|v| v.parse().map_err(|_| "bad --deadline-ms".to_string()))
                .transpose()?;
            let [index, expr] = rest.as_slice() else {
                return Err("query: expected an index path and one expression".into());
            };
            Ok(Command::Query {
                index: PathBuf::from(index),
                expr: (*expr).clone(),
                verify,
                show,
                workers,
                trace,
                no_plan,
                limit,
                deadline_ms,
            })
        }
        "load" => {
            let ingest_threads = take_opt(&mut rest, "--ingest-threads")?
                .map(|v| v.parse().map_err(|_| "bad --ingest-threads".to_string()))
                .transpose()?;
            if ingest_threads == Some(0) {
                return Err("bad --ingest-threads".into());
            }
            let batch_size = take_opt(&mut rest, "--batch-size")?
                .map(|v| v.parse().map_err(|_| "bad --batch-size".to_string()))
                .transpose()?
                .unwrap_or(512);
            if batch_size == 0 {
                return Err("bad --batch-size".into());
            }
            let [index, input] = rest.as_slice() else {
                return Err("load: expected an index path and a directory or XML file".into());
            };
            Ok(Command::Load {
                index: PathBuf::from(index),
                input: PathBuf::from(input),
                ingest_threads,
                batch_size,
            })
        }
        "compact" => {
            let [index] = rest.as_slice() else {
                return Err("compact: expected exactly one index path".into());
            };
            Ok(Command::Compact {
                index: PathBuf::from(index),
            })
        }
        "remove" => {
            let [index, id] = rest.as_slice() else {
                return Err("remove: expected an index path and a doc id".into());
            };
            Ok(Command::Remove {
                index: PathBuf::from(index),
                doc_id: id.parse().map_err(|_| "bad doc id".to_string())?,
            })
        }
        "explain" => {
            let plan = take_flag(&mut rest, "--plan");
            let no_plan = take_flag(&mut rest, "--no-plan");
            let workers = take_opt(&mut rest, "--workers")?
                .map(|v| v.parse().map_err(|_| "bad --workers".to_string()))
                .transpose()?
                .unwrap_or(1);
            let [index, expr] = rest.as_slice() else {
                return Err("explain: expected an index path and one expression".into());
            };
            Ok(Command::Explain {
                index: PathBuf::from(index),
                expr: (*expr).clone(),
                workers,
                plan,
                no_plan,
            })
        }
        "list" => {
            let [index] = rest.as_slice() else {
                return Err("list: expected exactly one index path".into());
            };
            Ok(Command::List {
                index: PathBuf::from(index),
            })
        }
        "stats" => {
            let format = take_opt(&mut rest, "--format")?
                .map(|v| v.parse())
                .transpose()?
                .unwrap_or_default();
            let [index] = rest.as_slice() else {
                return Err("stats: expected exactly one index path".into());
            };
            Ok(Command::Stats {
                index: PathBuf::from(index),
                format,
            })
        }
        "profile" => {
            let workers = take_opt(&mut rest, "--workers")?
                .map(|v| v.parse().map_err(|_| "bad --workers".to_string()))
                .transpose()?
                .unwrap_or(1);
            let slow_ms = take_opt(&mut rest, "--slow-ms")?
                .map(|v| v.parse().map_err(|_| "bad --slow-ms".to_string()))
                .transpose()?
                .unwrap_or(0);
            let [index, queries] = rest.as_slice() else {
                return Err("profile: expected an index path and a queries file".into());
            };
            Ok(Command::Profile {
                index: PathBuf::from(index),
                queries: PathBuf::from(queries),
                workers,
                slow_ms,
            })
        }
        "rebuild" => {
            let [index, dst] = rest.as_slice() else {
                return Err("rebuild: expected source and destination paths".into());
            };
            Ok(Command::Rebuild {
                index: PathBuf::from(index),
                dst: PathBuf::from(dst),
            })
        }
        "check" => {
            let [index] = rest.as_slice() else {
                return Err("check: expected exactly one index path".into());
            };
            Ok(Command::Check {
                index: PathBuf::from(index),
            })
        }
        "recover" => {
            let [index] = rest.as_slice() else {
                return Err("recover: expected exactly one index path".into());
            };
            Ok(Command::Recover {
                index: PathBuf::from(index),
            })
        }
        "sim" => {
            let seed = take_opt(&mut rest, "--seed")?
                .map(|v| v.parse().map_err(|_| "bad --seed".to_string()))
                .transpose()?
                .unwrap_or(1);
            let ops = take_opt(&mut rest, "--ops")?
                .map(|v| v.parse().map_err(|_| "bad --ops".to_string()))
                .transpose()?
                .unwrap_or(200);
            let seconds = take_opt(&mut rest, "--seconds")?
                .map(|v| v.parse().map_err(|_| "bad --seconds".to_string()))
                .transpose()?;
            let replay = take_opt(&mut rest, "--replay")?.map(PathBuf::from);
            let out = take_opt(&mut rest, "--out")?.map(PathBuf::from);
            let page_size = take_opt(&mut rest, "--page-size")?
                .map(|v| v.parse().map_err(|_| "bad --page-size".to_string()))
                .transpose()?;
            let lambda = take_opt(&mut rest, "--lambda")?
                .map(|v| v.parse().map_err(|_| "bad --lambda".to_string()))
                .transpose()?;
            let mutate = take_opt(&mut rest, "--mutate")?
                .map(|v| v.parse().map_err(|e| format!("bad --mutate: {e}")))
                .transpose()?
                .unwrap_or_default();
            let dump = take_flag(&mut rest, "--dump");
            if !rest.is_empty() {
                return Err(format!("sim: unexpected argument '{}'", rest[0]));
            }
            Ok(Command::Sim {
                seed,
                ops,
                seconds,
                replay,
                out,
                page_size,
                lambda,
                mutate,
                dump,
            })
        }
        "serve" => {
            let defaults = vist_serve::ServeConfig::default();
            let addr = take_opt(&mut rest, "--addr")?.unwrap_or(defaults.addr);
            let max_inflight = take_opt(&mut rest, "--max-inflight")?
                .map(|v| v.parse().map_err(|_| "bad --max-inflight".to_string()))
                .transpose()?
                .unwrap_or(defaults.max_inflight);
            let queue_depth = take_opt(&mut rest, "--queue-depth")?
                .map(|v| v.parse().map_err(|_| "bad --queue-depth".to_string()))
                .transpose()?
                .unwrap_or(defaults.queue_depth);
            let query_workers = take_opt(&mut rest, "--query-workers")?
                .map(|v| v.parse().map_err(|_| "bad --query-workers".to_string()))
                .transpose()?
                .unwrap_or(defaults.query_workers);
            let max_deadline_ms = take_opt(&mut rest, "--max-deadline-ms")?
                .map(|v| v.parse().map_err(|_| "bad --max-deadline-ms".to_string()))
                .transpose()?
                .unwrap_or(defaults.max_deadline_ms);
            let drain_deadline_ms = take_opt(&mut rest, "--drain-deadline-ms")?
                .map(|v| v.parse().map_err(|_| "bad --drain-deadline-ms".to_string()))
                .transpose()?
                .unwrap_or(defaults.drain_deadline_ms);
            let slow_ms = take_opt(&mut rest, "--slow-ms")?
                .map(|v| v.parse().map_err(|_| "bad --slow-ms".to_string()))
                .transpose()?
                .unwrap_or(defaults.slow_ms);
            let access_log = take_opt(&mut rest, "--access-log")?.map(PathBuf::from);
            let [index] = rest.as_slice() else {
                return Err("serve: expected exactly one index path".into());
            };
            Ok(Command::Serve {
                index: PathBuf::from(index),
                addr,
                max_inflight,
                queue_depth,
                query_workers,
                max_deadline_ms,
                drain_deadline_ms,
                slow_ms,
                access_log,
            })
        }
        "traces" => {
            let addr = take_opt(&mut rest, "--addr")?
                .unwrap_or_else(|| vist_serve::ServeConfig::default().addr);
            let id = match rest.as_slice() {
                [] => None,
                [id] => Some((*id).clone()),
                _ => return Err("traces: expected at most one trace id".into()),
            };
            Ok(Command::Traces { addr, id })
        }
        "bench-serve" => {
            let addr = take_opt(&mut rest, "--addr")?
                .unwrap_or_else(|| vist_serve::BenchConfig::default().addr);
            let expr = take_opt(&mut rest, "--expr")?.unwrap_or_else(|| "/doc".to_string());
            let deadline_ms = take_opt(&mut rest, "--deadline-ms")?
                .map(|v| v.parse().map_err(|_| "bad --deadline-ms".to_string()))
                .transpose()?
                .unwrap_or(0);
            let clients = take_opt(&mut rest, "--clients")?
                .map(|v| v.parse().map_err(|_| "bad --clients".to_string()))
                .transpose()?;
            let burst_clients = take_opt(&mut rest, "--burst-clients")?
                .map(|v| v.parse().map_err(|_| "bad --burst-clients".to_string()))
                .transpose()?;
            let duration_ms = take_opt(&mut rest, "--duration-ms")?
                .map(|v| v.parse().map_err(|_| "bad --duration-ms".to_string()))
                .transpose()?;
            let smoke = take_flag(&mut rest, "--smoke");
            let out = take_opt(&mut rest, "--out")?.map(PathBuf::from);
            if !rest.is_empty() {
                return Err(format!("bench-serve: unexpected argument '{}'", rest[0]));
            }
            Ok(Command::BenchServe {
                addr,
                expr,
                deadline_ms,
                clients,
                burst_clients,
                duration_ms,
                smoke,
                out,
            })
        }
        other => Err(format!("unknown subcommand '{other}' (try 'vist help')")),
    }
}

/// Execute a command, returning the text to print.
pub fn run(cmd: Command) -> Result<String, String> {
    let open = |p: &PathBuf| VistIndex::open_file(p, 4096).map_err(|e| e.to_string());
    match cmd {
        Command::Help => Ok(USAGE.to_string()),
        Command::Create {
            index,
            page_size,
            lambda,
            store_documents,
        } => {
            let idx = VistIndex::create_file(
                &index,
                IndexOptions {
                    page_size,
                    lambda,
                    store_documents,
                    ..Default::default()
                },
            )
            .map_err(|e| e.to_string())?;
            idx.flush().map_err(|e| e.to_string())?;
            Ok(format!("created {}\n", index.display()))
        }
        Command::Add { index, files } => {
            let idx = open(&index)?;
            let mut out = String::new();
            for f in files {
                let xml =
                    std::fs::read_to_string(&f).map_err(|e| format!("{}: {e}", f.display()))?;
                let id = idx
                    .insert_xml(&xml)
                    .map_err(|e| format!("{}: {e}", f.display()))?;
                writeln!(out, "{} -> doc {id}", f.display()).unwrap();
            }
            idx.flush().map_err(|e| e.to_string())?;
            Ok(out)
        }
        Command::Query {
            index,
            expr,
            verify,
            show,
            workers,
            trace,
            no_plan,
            limit,
            deadline_ms,
        } => {
            let idx = open(&index)?;
            let was_tracing = vist_obs::tracing_enabled();
            if trace {
                vist_obs::set_tracing(true);
            }
            let deadline = deadline_ms
                .map(|ms| std::time::Instant::now() + std::time::Duration::from_millis(ms));
            let result = idx.query(
                &expr,
                &QueryOptions {
                    verify,
                    workers,
                    no_plan,
                    limit,
                    deadline,
                    ..Default::default()
                },
            );
            if trace {
                vist_obs::set_tracing(was_tracing);
            }
            let r = result.map_err(|e| e.to_string())?;
            let mut out = String::new();
            writeln!(
                out,
                "{} document(s){}",
                r.doc_ids.len(),
                if verify {
                    format!(" ({} candidates before verification)", r.candidates)
                } else {
                    String::new()
                }
            )
            .unwrap();
            for id in &r.doc_ids {
                if show {
                    let xml = idx.get_document_xml(*id).map_err(|e| e.to_string())?;
                    writeln!(out, "--- doc {id} ---\n{xml}").unwrap();
                } else {
                    writeln!(out, "{id}").unwrap();
                }
            }
            if trace {
                match &r.trace {
                    Some(tree) => {
                        writeln!(out, "\ntrace:").unwrap();
                        out.push_str(&tree.render());
                    }
                    None => writeln!(out, "\ntrace: (not recorded)").unwrap(),
                }
            }
            Ok(out)
        }
        Command::Load {
            index,
            input,
            ingest_threads,
            batch_size,
        } => {
            let idx = open(&index)?;
            let meta =
                std::fs::metadata(&input).map_err(|e| format!("{}: {e}", input.display()))?;
            let files: Vec<PathBuf> = if meta.is_dir() {
                let mut v: Vec<PathBuf> = std::fs::read_dir(&input)
                    .map_err(|e| format!("{}: {e}", input.display()))?
                    .filter_map(|e| e.ok().map(|e| e.path()))
                    .filter(|p| p.extension().is_some_and(|x| x == "xml"))
                    .collect();
                v.sort();
                if v.is_empty() {
                    return Err(format!("{}: no *.xml files", input.display()));
                }
                v
            } else {
                vec![input]
            };
            let mut docs = Vec::with_capacity(files.len());
            for f in &files {
                docs.push(std::fs::read_to_string(f).map_err(|e| format!("{}: {e}", f.display()))?);
            }
            if let Some(threads) = ingest_threads {
                let mut ids = Vec::with_capacity(docs.len());
                let mut batches = 0u64;
                for chunk in docs.chunks(batch_size) {
                    ids.extend(
                        idx.insert_batch(chunk, threads)
                            .map_err(|e| e.to_string())?,
                    );
                    batches += 1;
                }
                let s = idx.stats();
                return Ok(format!(
                    "batch ingested {} document(s) (ids {}..={}) in {} group commit(s) \
                     at {} prepare thread(s); {} live document(s)\n",
                    ids.len(),
                    ids.first().copied().unwrap_or(0),
                    ids.last().copied().unwrap_or(0),
                    batches,
                    threads,
                    s.documents,
                ));
            }
            let ids = idx.bulk_build(docs).map_err(|e| e.to_string())?;
            let s = idx.stats();
            Ok(format!(
                "bulk loaded {} document(s) (ids {}..={}); {} segment(s), {} segment doc(s)\n",
                ids.len(),
                ids.first().copied().unwrap_or(0),
                ids.last().copied().unwrap_or(0),
                s.segments,
                s.segment_docs,
            ))
        }
        Command::Compact { index } => {
            let idx = open(&index)?;
            let before = idx.stats();
            idx.compact().map_err(|e| e.to_string())?;
            let after = idx.stats();
            Ok(format!(
                "compacted {} segment(s) + delta -> {} segment(s); \
                 {} tombstoned doc(s) dropped; {} live document(s)\n",
                before.segments, after.segments, before.tombstones, after.documents,
            ))
        }
        Command::Remove { index, doc_id } => {
            let idx = open(&index)?;
            idx.remove_document(doc_id).map_err(|e| e.to_string())?;
            idx.flush().map_err(|e| e.to_string())?;
            Ok(format!("removed doc {doc_id}\n"))
        }
        Command::Explain {
            index,
            expr,
            workers,
            plan,
            no_plan,
        } => {
            let idx = open(&index)?;
            idx.explain_with(
                &expr,
                &QueryOptions {
                    workers,
                    no_plan,
                    ..Default::default()
                },
                plan,
            )
            .map_err(|e| e.to_string())
        }
        Command::List { index } => {
            let idx = open(&index)?;
            let ids = idx.document_ids().map_err(|e| e.to_string())?;
            let mut out = String::new();
            writeln!(out, "{} document(s)", ids.len()).unwrap();
            for id in ids {
                writeln!(out, "{id}").unwrap();
            }
            Ok(out)
        }
        Command::Stats { index, format } => {
            let idx = open(&index)?;
            // `stats()` refreshes the registry gauges (documents, store
            // bytes, tree depth) so all three formats see current values.
            let s = idx.stats();
            match format {
                StatsFormat::Human => {}
                StatsFormat::Json => return Ok(vist_obs::render_json(&vist_obs::snapshot())),
                StatsFormat::Prometheus => {
                    return Ok(vist_obs::render_prometheus(&vist_obs::snapshot()))
                }
            }
            // Also refreshes the leaf-fill gauges.
            let (b, segs) = idx.tier_breakdown().map_err(|e| e.to_string())?;
            let mut out = String::new();
            writeln!(out, "documents:            {}", s.documents).unwrap();
            writeln!(out, "suffix-tree nodes:    {}", s.nodes).unwrap();
            writeln!(out, "D-Ancestor keys:      {}", s.dkeys).unwrap();
            writeln!(out, "segments:             {}", s.segments).unwrap();
            writeln!(out, "segment documents:    {}", s.segment_docs).unwrap();
            writeln!(out, "segment bytes:        {}", s.segment_bytes).unwrap();
            writeln!(out, "tombstones:           {}", s.tombstones).unwrap();
            writeln!(out, "tight underflows:     {}", s.underflows).unwrap();
            writeln!(out, "node incarnations:    {}", s.deep_borrows).unwrap();
            writeln!(out, "match work items:     {}", s.match_work_items).unwrap();
            writeln!(out, "match steals:         {}", s.match_steals).unwrap();
            writeln!(out, "match scopes merged:  {}", s.match_scopes_merged).unwrap();
            writeln!(out, "match dedup skips:    {}", s.match_dedup_skips).unwrap();
            writeln!(out, "planner seqs pruned:  {}", s.match_planner_seqs_pruned).unwrap();
            writeln!(out, "planner probes:       {}", s.match_planner_probes).unwrap();
            writeln!(
                out,
                "planner probe prunes: {}",
                s.match_planner_probe_prunes
            )
            .unwrap();
            writeln!(
                out,
                "planner docid sweeps: {}",
                s.match_planner_docid_sweeps
            )
            .unwrap();
            writeln!(out, "ingest batches:       {}", s.ingest_batches).unwrap();
            writeln!(out, "ingest batch docs:    {}", s.ingest_batch_docs).unwrap();
            writeln!(
                out,
                "ingest dkey cache:    {} hit(s), {} miss(es)",
                s.ingest_dkey_cache_hits, s.ingest_dkey_cache_misses
            )
            .unwrap();
            writeln!(
                out,
                "ingest edge cache:    {} hit(s), {} miss(es)",
                s.ingest_edge_cache_hits, s.ingest_edge_cache_misses
            )
            .unwrap();
            writeln!(out, "store bytes:          {}", s.store_bytes).unwrap();
            let tree_line = |out: &mut String, label: &str, t: &vist_btree::TreeStats| {
                writeln!(
                    out,
                    "  {label:<19} {} entries, {} bytes, {} page(s), {:.0}% leaf fill",
                    t.entries,
                    t.total_bytes,
                    t.leaf_pages + t.internal_pages,
                    t.leaf_fill() * 100.0
                )
                .unwrap();
            };
            writeln!(out, "delta:").unwrap();
            tree_line(&mut out, "D-Ancestor tree:", &b.dancestor);
            tree_line(&mut out, "S-Ancestor tree:", &b.sancestor);
            tree_line(&mut out, "DocId tree:", &b.docid);
            tree_line(&mut out, "edges tree:", &b.edges);
            tree_line(&mut out, "aux tree:", &b.aux);
            for (id, sb) in &segs {
                writeln!(out, "segment {id}:").unwrap();
                tree_line(&mut out, "D-Ancestor tree:", &sb.dancestor);
                tree_line(&mut out, "S-Ancestor tree:", &sb.sancestor);
                tree_line(&mut out, "DocId tree:", &sb.docid);
                tree_line(&mut out, "documents tree:", &sb.aux);
                tree_line(&mut out, "statistics tree:", &sb.stats);
            }
            writeln!(out, "page reads:           {}", s.io.reads).unwrap();
            writeln!(out, "page writes:          {}", s.io.writes).unwrap();
            writeln!(out, "wal appends:          {}", s.io.wal_appends).unwrap();
            writeln!(out, "wal commits:          {}", s.io.wal_commits).unwrap();
            writeln!(out, "recovered pages:      {}", s.io.recovered_pages).unwrap();
            writeln!(out, "wal bytes discarded:  {}", s.io.wal_discarded_bytes).unwrap();
            let t = s.pool.totals();
            writeln!(
                out,
                "buffer pool:          {} shard(s), {} hits ({} uncontended), {} misses",
                s.pool.shard_count(),
                t.hits,
                t.uncontended_hits,
                t.misses
            )
            .unwrap();
            for (i, sh) in s.pool.shards.iter().enumerate() {
                writeln!(
                    out,
                    "  shard {i:>2}:           {} hits, {} misses, {} write-backs",
                    sh.hits, sh.misses, sh.write_backs
                )
                .unwrap();
            }
            Ok(out)
        }
        Command::Profile {
            index,
            queries,
            workers,
            slow_ms,
        } => {
            let idx = open(&index)?;
            let text = std::fs::read_to_string(&queries)
                .map_err(|e| format!("{}: {e}", queries.display()))?;
            let exprs: Vec<&str> = text
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .collect();
            if exprs.is_empty() {
                return Err(format!("{}: no queries to replay", queries.display()));
            }
            // Capture every replayed query in the slow-query log (threshold
            // 0 records all); restore the previous threshold afterwards so
            // a long-lived process keeps its configuration.
            let prev_threshold = vist_obs::slowlog::threshold_nanos();
            vist_obs::slowlog::set_threshold_nanos(slow_ms.saturating_mul(1_000_000));
            vist_obs::slowlog::clear();
            let mut rows: Vec<(String, usize, crate::StageTimings)> = Vec::new();
            let mut failure = None;
            for expr in &exprs {
                match idx.query(
                    expr,
                    &QueryOptions {
                        workers,
                        ..Default::default()
                    },
                ) {
                    Ok(r) => rows.push(((*expr).to_string(), r.doc_ids.len(), r.timings)),
                    Err(e) => {
                        failure = Some(format!("{expr}: {e}"));
                        break;
                    }
                }
            }
            let slow = vist_obs::slowlog::entries();
            vist_obs::slowlog::set_threshold_nanos(prev_threshold);
            if let Some(e) = failure {
                return Err(e);
            }

            let mut out = String::new();
            writeln!(
                out,
                "replayed {} query(ies) with {workers} worker(s)\n",
                rows.len()
            )
            .unwrap();
            writeln!(
                out,
                "{:>4}  {:>6}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}  query",
                "#", "docs", "total", "translate", "match", "merge", "docid", "verify"
            )
            .unwrap();
            let mut total_nanos = 0u64;
            for (i, (expr, docs, t)) in rows.iter().enumerate() {
                total_nanos += t.total_nanos;
                writeln!(
                    out,
                    "{i:>4}  {docs:>6}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}  {expr}",
                    vist_obs::format_nanos(t.total_nanos),
                    vist_obs::format_nanos(t.translate_nanos),
                    vist_obs::format_nanos(t.match_nanos),
                    vist_obs::format_nanos(t.merge_nanos),
                    vist_obs::format_nanos(t.docid_nanos),
                    vist_obs::format_nanos(t.verify_nanos),
                )
                .unwrap();
            }
            writeln!(
                out,
                "\nworkload total: {}",
                vist_obs::format_nanos(total_nanos)
            )
            .unwrap();
            let mut totals: Vec<u64> = rows.iter().map(|(_, _, t)| t.total_nanos).collect();
            totals.sort_unstable();
            let q = |p: f64| vist_obs::format_nanos(vist_obs::percentile::nearest_rank(&totals, p));
            writeln!(
                out,
                "per-query latency: p50 {}  p90 {}  p95 {}  p99 {}  p999 {}  max {}",
                q(0.50),
                q(0.90),
                q(0.95),
                q(0.99),
                q(0.999),
                vist_obs::format_nanos(totals.last().copied().unwrap_or(0)),
            )
            .unwrap();

            writeln!(
                out,
                "\nslow-query log (threshold {slow_ms}ms, {} entries):",
                slow.len()
            )
            .unwrap();
            for q in &slow {
                write!(
                    out,
                    "  {:>9}  workers={}  {}  [",
                    vist_obs::format_nanos(q.total_nanos),
                    q.workers,
                    q.query
                )
                .unwrap();
                for (i, (name, nanos)) in q.stages.iter().enumerate() {
                    if i > 0 {
                        out.push(' ');
                    }
                    write!(out, "{name}={}", vist_obs::format_nanos(*nanos)).unwrap();
                }
                writeln!(out, "]").unwrap();
            }
            Ok(out)
        }
        Command::Rebuild { index, dst } => {
            let idx = open(&index)?;
            let fresh = idx
                .rebuild_to_file(&dst, IndexOptions::default())
                .map_err(|e| e.to_string())?;
            Ok(format!(
                "rebuilt {} -> {} ({} documents, {} nodes)\n",
                index.display(),
                dst.display(),
                fresh.doc_count(),
                fresh.stats().nodes
            ))
        }
        Command::Check { index } => {
            let idx = open(&index)?;
            let report = idx.check().map_err(|e| e.to_string())?;
            Ok(format!("{report}ok\n"))
        }
        Command::Sim {
            seed,
            ops,
            seconds,
            replay,
            out,
            page_size,
            lambda,
            mutate,
            dump,
        } => run_sim(SimArgs {
            seed,
            ops,
            seconds,
            replay,
            out,
            page_size,
            lambda,
            mutate,
            dump,
        }),
        Command::Recover { index } => {
            // Opening replays any committed write-ahead-log records; then
            // verify the result and checkpoint it so the log is gone.
            let idx = open(&index)?;
            let io = idx.stats().io;
            let report = idx.check().map_err(|e| e.to_string())?;
            idx.flush().map_err(|e| e.to_string())?;
            Ok(format!(
                "recovered {}: {} page(s) replayed, {} uncommitted byte(s) discarded\n{report}ok\n",
                index.display(),
                io.recovered_pages,
                io.wal_discarded_bytes,
            ))
        }
        Command::Serve {
            index,
            addr,
            max_inflight,
            queue_depth,
            query_workers,
            max_deadline_ms,
            drain_deadline_ms,
            slow_ms,
            access_log,
        } => {
            let idx = std::sync::Arc::new(open(&index)?);
            let cfg = vist_serve::ServeConfig {
                addr,
                max_inflight,
                queue_depth,
                query_workers,
                max_deadline_ms,
                drain_deadline_ms,
                slow_ms,
                access_log: access_log.map(|p| p.to_string_lossy().into_owned()),
            };
            let handle = vist_serve::Server::start(idx, cfg).map_err(|e| e.to_string())?;
            // Announce readiness immediately — run() only returns its
            // string after the drain, which may be hours away.
            print_stdout(&format!(
                "serving {} on {} (SIGTERM drains and exits)\n",
                index.display(),
                handle.local_addr(),
            ));
            let report = handle.join();
            let s = report.stats;
            let summary = format!(
                "drained: {} request(s) — {} ok, {} shed, {} deadline-expired, \
                 {} draining-rejected, {} bad, {} error(s); flush {}\n",
                s.requests,
                s.ok,
                s.shed,
                s.deadline_expired,
                s.draining_rejected,
                s.bad_requests,
                s.errors,
                if report.flush_ok { "ok" } else { "FAILED" },
            );
            if !report.drained_clean {
                return Err(format!(
                    "{summary}drain deadline passed with {} query(ies) still in flight",
                    report.inflight_at_deadline,
                ));
            }
            if !report.flush_ok {
                return Err(format!("{summary}final flush failed"));
            }
            Ok(summary)
        }
        Command::Traces { addr, id } => {
            let target = match &id {
                Some(id) => {
                    if vist_obs::traceid::parse(id).is_none() {
                        return Err(format!(
                            "traces: '{id}' is not a trace id (expected up to 32 hex digits)"
                        ));
                    }
                    format!("/debug/traces?id={id}")
                }
                None => "/debug/traces".to_string(),
            };
            let (status, body) = http_get(&addr, &target)?;
            if status != 200 {
                return Err(format!("traces: {addr} answered {status}: {body}"));
            }
            Ok(format!("{body}\n"))
        }
        Command::BenchServe {
            addr,
            expr,
            deadline_ms,
            clients,
            burst_clients,
            duration_ms,
            smoke,
            out,
        } => {
            let mut cfg = vist_serve::BenchConfig {
                addr,
                expr,
                deadline_ms,
                ..vist_serve::BenchConfig::default()
            };
            if smoke {
                cfg = cfg.smoke();
            }
            if let Some(n) = clients {
                cfg.clients = n;
            }
            if let Some(n) = burst_clients {
                cfg.burst_clients = n;
            }
            if let Some(ms) = duration_ms {
                cfg.duration = std::time::Duration::from_millis(ms);
            }
            let report = vist_serve::bench::run(&cfg);
            if let Some(path) = &out {
                std::fs::write(path, report.to_json())
                    .map_err(|e| format!("{}: {e}", path.display()))?;
            }
            let mut text = String::new();
            for p in [&report.baseline, &report.loaded, &report.burst] {
                let _ = writeln!(
                    text,
                    "{:<9} {:>3} client(s): {:>6} req ({} ok, {} shed, {} expired) \
                     p50 {:.2}ms p95 {:.2}ms p99 {:.2}ms p999 {:.2}ms shed-rate {:.1}%",
                    p.name,
                    p.clients,
                    p.requests,
                    p.ok,
                    p.shed,
                    p.deadline_expired,
                    p.p50_ns as f64 / 1e6,
                    p.p95_ns as f64 / 1e6,
                    p.p99_ns as f64 / 1e6,
                    p.p999_ns as f64 / 1e6,
                    p.shed_rate() * 100.0,
                );
            }
            let _ = writeln!(
                text,
                "loaded p99 / baseline p99 = {:.2}x",
                report.p99_ratio_loaded_vs_baseline
            );
            if smoke && report.burst.shed == 0 {
                return Err(format!(
                    "{text}smoke: overload burst produced no shed responses — \
                     admission control is not engaging"
                ));
            }
            Ok(text)
        }
    }
}

/// Minimal HTTP GET against a `vist serve` instance (it answers one
/// request per connection and closes). Returns `(status, body)`.
fn http_get(addr: &str, target: &str) -> Result<(u16, String), String> {
    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(addr)
        .map_err(|e| format!("cannot connect to {addr}: {e} (is 'vist serve' running?)"))?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(format!("GET {target} HTTP/1.1\r\nHost: vist\r\n\r\n").as_bytes())
        .map_err(|e| e.to_string())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw).map_err(|e| e.to_string())?;
    let status: u16 = raw
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.split_whitespace().next())
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| format!("{addr}: malformed HTTP response"))?;
    let body = raw
        .split_once("\r\n\r\n")
        .map_or("", |(_, b)| b)
        .to_string();
    Ok((status, body))
}

/// Write `s` to `w`. `Ok(false)` means the reader hung up
/// (`BrokenPipe`) — not a failure, the caller should just stop writing.
pub fn write_or_broken_pipe<W: std::io::Write>(w: &mut W, s: &str) -> std::io::Result<bool> {
    match w.write_all(s.as_bytes()).and_then(|()| w.flush()) {
        Ok(()) => Ok(true),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Ok(false),
        Err(e) => Err(e),
    }
}

/// Print to stdout, exiting cleanly (status 0) when the pipe is gone —
/// so `vist query ... | head` ends quietly instead of panicking.
pub fn print_stdout(s: &str) {
    match write_or_broken_pipe(&mut std::io::stdout(), s) {
        Ok(true) => {}
        Ok(false) => std::process::exit(0),
        Err(e) => {
            eprintln!("error: cannot write to stdout: {e}");
            std::process::exit(1);
        }
    }
}

struct SimArgs {
    seed: u64,
    ops: usize,
    seconds: Option<u64>,
    replay: Option<PathBuf>,
    out: Option<PathBuf>,
    page_size: Option<usize>,
    lambda: Option<u64>,
    mutate: vist_sim::SimMutation,
    dump: bool,
}

/// Shrink-search budget (candidate executions) for `vist sim`.
const SIM_SHRINK_BUDGET: usize = 400;

/// `vist sim`: run seeded simulation workloads (see `docs/TESTING.md`).
/// Single-seed and replay output contains no wall-clock values, so two
/// runs with the same arguments print identical bytes.
fn run_sim(args: SimArgs) -> Result<String, String> {
    let scratch = vist_storage::testutil::TempDir::new("vist-sim-cli");

    if let Some(replay) = &args.replay {
        let text =
            std::fs::read_to_string(replay).map_err(|e| format!("{}: {e}", replay.display()))?;
        let trace =
            vist_sim::Trace::from_text(&text).map_err(|e| format!("{}: {e}", replay.display()))?;
        let dir = scratch.file("replay");
        std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
        return match vist_sim::run_trace(&trace, &dir) {
            Ok(report) => Ok(format!("replay {}: ok\n{report}\n", replay.display())),
            Err(d) => Err(format!("replay {}: DIVERGENCE at {d}\n", replay.display())),
        };
    }

    let config = |seed: u64| vist_sim::SimConfig {
        seed,
        ops: args.ops,
        page_size: args.page_size,
        lambda: args.lambda,
        mutation: args.mutate,
        ..Default::default()
    };

    // On divergence: shrink, persist the minimal reproducer, exit nonzero.
    let diverged = |trace: &vist_sim::Trace, d: &vist_sim::Divergence| -> String {
        let shrink_dir = scratch.file("shrink");
        let _ = std::fs::create_dir_all(&shrink_dir);
        let outcome = vist_sim::shrink(trace, &shrink_dir, SIM_SHRINK_BUDGET);
        let text = outcome.trace.to_text();
        let mut msg = format!(
            "seed {}: DIVERGENCE at {d}\nshrunk to {} op(s) in {} run(s); minimized divergence: {}\n",
            trace.seed,
            outcome.trace.ops.len(),
            outcome.runs,
            outcome.divergence,
        );
        match &args.out {
            Some(path) => match std::fs::write(path, &text) {
                Ok(()) => {
                    let _ = writeln!(
                        msg,
                        "reproducer written to {} (replay: vist sim --replay {})",
                        path.display(),
                        path.display()
                    );
                }
                Err(e) => {
                    let _ = writeln!(msg, "could not write {}: {e}", path.display());
                    let _ = writeln!(msg, "reproducer:\n{text}");
                }
            },
            None => {
                let _ = writeln!(msg, "reproducer (pass --out FILE to save):\n{text}");
            }
        }
        msg
    };

    if let Some(seconds) = args.seconds {
        // Smoke mode: consecutive seeds until the time budget is spent.
        // Per-seed results are deterministic; how many seeds fit is not.
        let start = std::time::Instant::now();
        let mut out = String::new();
        let mut seed = args.seed;
        let mut ran = 0u64;
        while start.elapsed().as_secs() < seconds {
            let trace = vist_sim::generate(&config(seed));
            let dir = scratch.file(&format!("seed-{seed}"));
            std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
            match vist_sim::run_trace(&trace, &dir) {
                Ok(report) => {
                    let _ = writeln!(out, "seed {seed}: ok ({report})");
                }
                Err(d) => return Err(diverged(&trace, &d)),
            }
            let _ = std::fs::remove_dir_all(&dir);
            ran += 1;
            seed += 1;
        }
        let _ = writeln!(out, "{ran} seed(s) in {seconds}s budget: all ok");
        return Ok(out);
    }

    let trace = vist_sim::generate(&config(args.seed));
    let text = trace.to_text();
    let dir = scratch.file("run");
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    match vist_sim::run_trace(&trace, &dir) {
        Ok(report) => {
            let mut out = format!(
                "seed {}: ok\ntrace: {} op(s), digest {:08x} (page_size={} lambda={} mutation={})\n{report}\n",
                trace.seed,
                trace.ops.len(),
                vist_storage::crc32c(text.as_bytes()),
                trace.page_size,
                trace.lambda,
                trace.mutation,
            );
            if args.dump {
                let _ = writeln!(out, "\n{text}");
            }
            Ok(out)
        }
        Err(d) => Err(diverged(&trace, &d)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_create_with_options() {
        let c = parse_args(&argv(
            "create /tmp/i.vist --page-size 2048 --lambda 4 --no-docs",
        ))
        .unwrap();
        assert_eq!(
            c,
            Command::Create {
                index: PathBuf::from("/tmp/i.vist"),
                page_size: 2048,
                lambda: 4,
                store_documents: false,
            }
        );
        let c = parse_args(&argv("create idx")).unwrap();
        assert!(matches!(
            c,
            Command::Create {
                page_size: 4096,
                lambda: 16,
                store_documents: true,
                ..
            }
        ));
    }

    #[test]
    fn parse_query_flags() {
        let c = parse_args(&argv("query idx //author --verify --show")).unwrap();
        assert_eq!(
            c,
            Command::Query {
                index: PathBuf::from("idx"),
                expr: "//author".into(),
                verify: true,
                show: true,
                workers: 1,
                trace: false,
                no_plan: false,
                limit: None,
                deadline_ms: None,
            }
        );
        let c = parse_args(&argv("query idx //author --workers 4 --trace")).unwrap();
        assert_eq!(
            c,
            Command::Query {
                index: PathBuf::from("idx"),
                expr: "//author".into(),
                verify: false,
                show: false,
                workers: 4,
                trace: true,
                no_plan: false,
                limit: None,
                deadline_ms: None,
            }
        );
        assert!(parse_args(&argv("query idx //author --workers")).is_err());
        assert!(parse_args(&argv("explain idx //author --workers nope")).is_err());
    }

    #[test]
    fn parse_planner_flags() {
        let c = parse_args(&argv("query idx //author --no-plan --limit 7")).unwrap();
        assert_eq!(
            c,
            Command::Query {
                index: PathBuf::from("idx"),
                expr: "//author".into(),
                verify: false,
                show: false,
                workers: 1,
                trace: false,
                no_plan: true,
                limit: Some(7),
                deadline_ms: None,
            }
        );
        assert!(parse_args(&argv("query idx //author --limit many")).is_err());
        assert!(parse_args(&argv("query idx //author --limit")).is_err());
        let c = parse_args(&argv("explain idx '/a/b' --plan")).unwrap();
        assert_eq!(
            c,
            Command::Explain {
                index: PathBuf::from("idx"),
                expr: "'/a/b'".into(),
                workers: 1,
                plan: true,
                no_plan: false,
            }
        );
        let c = parse_args(&argv("explain idx //author --plan --no-plan --workers 2")).unwrap();
        assert!(matches!(
            c,
            Command::Explain {
                plan: true,
                no_plan: true,
                workers: 2,
                ..
            }
        ));
    }

    #[test]
    fn parse_stats_formats() {
        assert_eq!(
            parse_args(&argv("stats idx")).unwrap(),
            Command::Stats {
                index: PathBuf::from("idx"),
                format: StatsFormat::Human,
            }
        );
        assert_eq!(
            parse_args(&argv("stats idx --format json")).unwrap(),
            Command::Stats {
                index: PathBuf::from("idx"),
                format: StatsFormat::Json,
            }
        );
        assert_eq!(
            parse_args(&argv("stats idx --format prometheus")).unwrap(),
            Command::Stats {
                index: PathBuf::from("idx"),
                format: StatsFormat::Prometheus,
            }
        );
        assert!(parse_args(&argv("stats idx --format yaml")).is_err());
        assert!(parse_args(&argv("stats idx --format")).is_err());
    }

    #[test]
    fn parse_profile() {
        assert_eq!(
            parse_args(&argv("profile idx q.txt --workers 2 --slow-ms 10")).unwrap(),
            Command::Profile {
                index: PathBuf::from("idx"),
                queries: PathBuf::from("q.txt"),
                workers: 2,
                slow_ms: 10,
            }
        );
        assert_eq!(
            parse_args(&argv("profile idx q.txt")).unwrap(),
            Command::Profile {
                index: PathBuf::from("idx"),
                queries: PathBuf::from("q.txt"),
                workers: 1,
                slow_ms: 0,
            }
        );
        assert!(parse_args(&argv("profile idx")).is_err());
        assert!(parse_args(&argv("profile idx q.txt --slow-ms nope")).is_err());
    }

    #[test]
    fn parse_errors() {
        assert!(parse_args(&argv("create")).is_err());
        assert!(parse_args(&argv("create a b")).is_err());
        assert!(parse_args(&argv("add idx")).is_err());
        assert!(parse_args(&argv("query idx")).is_err());
        assert!(parse_args(&argv("remove idx notanumber")).is_err());
        assert!(parse_args(&argv("frobnicate")).is_err());
        assert!(parse_args(&argv("create idx --page-size")).is_err());
    }

    #[test]
    fn parse_sim() {
        assert_eq!(
            parse_args(&argv("sim")).unwrap(),
            Command::Sim {
                seed: 1,
                ops: 200,
                seconds: None,
                replay: None,
                out: None,
                page_size: None,
                lambda: None,
                mutate: vist_sim::SimMutation::None,
                dump: false,
            }
        );
        assert_eq!(
            parse_args(&argv(
                "sim --seed 9 --ops 50 --mutate scope-off-by-one --out min.trace --dump"
            ))
            .unwrap(),
            Command::Sim {
                seed: 9,
                ops: 50,
                seconds: None,
                replay: None,
                out: Some(PathBuf::from("min.trace")),
                page_size: None,
                lambda: None,
                mutate: vist_sim::SimMutation::ScopeOffByOne,
                dump: true,
            }
        );
        assert!(matches!(
            parse_args(&argv("sim --replay tests/seeds/x.trace")).unwrap(),
            Command::Sim {
                replay: Some(_),
                ..
            }
        ));
        assert!(parse_args(&argv("sim --seed nope")).is_err());
        assert!(parse_args(&argv("sim --mutate frob")).is_err());
        assert!(parse_args(&argv("sim stray")).is_err());
    }

    #[test]
    fn sim_single_seed_is_byte_reproducible() {
        let args = argv("sim --seed 3 --ops 40 --dump");
        let a = run(parse_args(&args).unwrap()).unwrap();
        let b = run(parse_args(&args).unwrap()).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("seed 3: ok"), "{a}");
        assert!(a.contains("op insert"), "{a}");
    }

    #[test]
    fn sim_mutation_produces_reproducer_and_replay_diverges() {
        let tmp = vist_storage::testutil::TempDir::new("cli-sim-mut");
        let out = tmp.file("min.trace");
        // A seed known (and tested in vist-sim) to trip the planted bug
        // within a small window; sweep a few to stay robust.
        let mut err = None;
        for seed in 1..=12u64 {
            let r = run(parse_args(&argv(&format!(
                "sim --seed {seed} --ops 120 --mutate scope-off-by-one --out {}",
                out.display()
            )))
            .unwrap());
            if r.is_err() {
                err = r.err();
                break;
            }
        }
        let msg = err.expect("planted mutation not caught by any seed in 1..=12");
        assert!(msg.contains("DIVERGENCE"), "{msg}");
        assert!(msg.contains("reproducer written"), "{msg}");
        let replayed = run(Command::Sim {
            seed: 1,
            ops: 200,
            seconds: None,
            replay: Some(out),
            out: None,
            page_size: None,
            lambda: None,
            mutate: vist_sim::SimMutation::None,
            dump: false,
        });
        let replay_msg = replayed.expect_err("minimized trace must still diverge");
        assert!(replay_msg.contains("DIVERGENCE"), "{replay_msg}");
    }

    #[test]
    fn help_default() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert!(run(Command::Help).unwrap().contains("USAGE"));
    }

    #[test]
    fn parse_list() {
        assert_eq!(
            parse_args(&argv("list idx")).unwrap(),
            Command::List {
                index: PathBuf::from("idx")
            }
        );
        assert!(parse_args(&argv("list")).is_err());
    }

    #[test]
    fn parse_check_and_recover() {
        assert_eq!(
            parse_args(&argv("check idx")).unwrap(),
            Command::Check {
                index: PathBuf::from("idx")
            }
        );
        assert_eq!(
            parse_args(&argv("recover idx")).unwrap(),
            Command::Recover {
                index: PathBuf::from("idx")
            }
        );
        assert!(parse_args(&argv("check")).is_err());
        assert!(parse_args(&argv("recover a b")).is_err());
    }

    #[test]
    fn check_and_recover_on_healthy_index() {
        let dir = vist_storage::testutil::TempDir::new("cli-check");
        let index = dir.file("i.idx");
        run(parse_args(&argv(&format!("create {}", index.display()))).unwrap()).unwrap();
        let xml = dir.file("d.xml");
        std::fs::write(&xml, "<a><b>1</b></a>").unwrap();
        run(Command::Add {
            index: index.clone(),
            files: vec![xml],
        })
        .unwrap();
        let out = run(Command::Check {
            index: index.clone(),
        })
        .unwrap();
        assert!(out.contains("tree dancestor ok"), "{out}");
        assert!(out.trim_end().ends_with("ok"), "{out}");
        let out = run(Command::Recover { index }).unwrap();
        assert!(out.contains("recovered"), "{out}");
        assert!(out.contains("0 page(s) replayed"), "{out}");
    }

    #[test]
    fn end_to_end_lifecycle() {
        let tmp = vist_storage::testutil::TempDir::new("cli-e2e");
        let index = tmp.file("i.idx");
        let dst = tmp.file("rebuilt.idx");
        let xml1 = tmp.file("1.xml");
        let xml2 = tmp.file("2.xml");
        std::fs::write(&xml1, "<book><author>David</author></book>").unwrap();
        std::fs::write(&xml2, "<book><author>Mary</author></book>").unwrap();

        run(parse_args(&argv(&format!("create {}", index.display()))).unwrap()).unwrap();
        let out = run(Command::Add {
            index: index.clone(),
            files: vec![xml1.clone(), xml2.clone()],
        })
        .unwrap();
        assert!(out.contains("doc 0") && out.contains("doc 1"));

        let out = run(Command::Query {
            index: index.clone(),
            expr: "/book/author[text='David']".into(),
            verify: true,
            show: true,
            workers: 2,
            trace: false,
            no_plan: false,
            limit: None,
            deadline_ms: None,
        })
        .unwrap();
        assert!(out.starts_with("1 document(s)"), "{out}");
        assert!(out.contains("David"));

        let out = run(Command::Stats {
            index: index.clone(),
            format: StatsFormat::Human,
        })
        .unwrap();
        assert!(out.contains("documents:            2"), "{out}");
        assert!(out.contains("buffer pool:"), "{out}");
        assert!(out.contains("match work items:"), "{out}");
        assert!(out.contains("wal appends:"), "{out}");
        assert!(out.contains("wal commits:"), "{out}");
        assert!(out.contains("recovered pages:"), "{out}");

        run(Command::Remove {
            index: index.clone(),
            doc_id: 0,
        })
        .unwrap();
        let out = run(Command::Query {
            index: index.clone(),
            expr: "//author".into(),
            verify: false,
            show: false,
            workers: 1,
            trace: false,
            no_plan: false,
            limit: None,
            deadline_ms: None,
        })
        .unwrap();
        assert!(out.starts_with("1 document(s)"), "{out}");

        let out = run(Command::Rebuild {
            index: index.clone(),
            dst: dst.clone(),
        })
        .unwrap();
        assert!(out.contains("1 documents"), "{out}");
    }

    #[test]
    fn parse_load_and_compact() {
        assert_eq!(
            parse_args(&argv("load idx corpus/")).unwrap(),
            Command::Load {
                index: PathBuf::from("idx"),
                input: PathBuf::from("corpus/"),
                ingest_threads: None,
                batch_size: 512,
            }
        );
        assert_eq!(
            parse_args(&argv("load idx corpus/ --ingest-threads 4 --batch-size 64")).unwrap(),
            Command::Load {
                index: PathBuf::from("idx"),
                input: PathBuf::from("corpus/"),
                ingest_threads: Some(4),
                batch_size: 64,
            }
        );
        assert!(parse_args(&argv("load idx corpus/ --ingest-threads 0")).is_err());
        assert!(parse_args(&argv("load idx corpus/ --ingest-threads x")).is_err());
        assert!(parse_args(&argv("load idx corpus/ --batch-size 0")).is_err());
        assert_eq!(
            parse_args(&argv("compact idx")).unwrap(),
            Command::Compact {
                index: PathBuf::from("idx"),
            }
        );
        assert!(parse_args(&argv("load idx")).is_err());
        assert!(parse_args(&argv("load")).is_err());
        assert!(parse_args(&argv("compact")).is_err());
        assert!(parse_args(&argv("compact idx extra")).is_err());
    }

    #[test]
    fn end_to_end_tiered_load_and_compact() {
        let tmp = vist_storage::testutil::TempDir::new("cli-tiered");
        let index = tmp.file("i.idx");
        let corpus = tmp.file("corpus");
        std::fs::create_dir(&corpus).unwrap();
        for (i, name) in ["ann", "bob", "eve"].iter().enumerate() {
            std::fs::write(
                corpus.join(format!("{i}.xml")),
                format!("<book><author>{name}</author></book>"),
            )
            .unwrap();
        }

        run(parse_args(&argv(&format!("create {}", index.display()))).unwrap()).unwrap();
        let out = run(Command::Load {
            index: index.clone(),
            input: corpus.clone(),
            ingest_threads: None,
            batch_size: 512,
        })
        .unwrap();
        assert!(out.contains("bulk loaded 3 document(s)"), "{out}");
        assert!(out.contains("1 segment(s)"), "{out}");

        // Loading a single file appends a second segment.
        let single = tmp.file("extra.xml");
        std::fs::write(&single, "<book><author>dan</author></book>").unwrap();
        let out = run(Command::Load {
            index: index.clone(),
            input: single,
            ingest_threads: None,
            batch_size: 512,
        })
        .unwrap();
        assert!(out.contains("bulk loaded 1 document(s)"), "{out}");
        assert!(out.contains("2 segment(s)"), "{out}");

        // Queries see segment-resident documents; removal tombstones them.
        let out = run(Command::Query {
            index: index.clone(),
            expr: "//author".into(),
            verify: true,
            show: false,
            workers: 1,
            trace: false,
            no_plan: false,
            limit: None,
            deadline_ms: None,
        })
        .unwrap();
        assert!(out.starts_with("4 document(s)"), "{out}");
        run(Command::Remove {
            index: index.clone(),
            doc_id: 1,
        })
        .unwrap();

        let out = run(Command::Stats {
            index: index.clone(),
            format: StatsFormat::Human,
        })
        .unwrap();
        assert!(out.contains("segments:             2"), "{out}");
        assert!(out.contains("tombstones:           1"), "{out}");
        assert!(out.contains("delta:"), "{out}");
        assert!(out.contains("segment 1:"), "{out}");
        assert!(out.contains("statistics tree:"), "{out}");
        assert!(out.contains("leaf fill"), "{out}");

        let out = run(Command::Compact {
            index: index.clone(),
        })
        .unwrap();
        assert!(out.contains("compacted 2 segment(s)"), "{out}");
        assert!(out.contains("1 tombstoned doc(s) dropped"), "{out}");
        assert!(out.contains("3 live document(s)"), "{out}");

        let out = run(Command::Query {
            index: index.clone(),
            expr: "//author".into(),
            verify: true,
            show: true,
            workers: 1,
            trace: false,
            no_plan: false,
            limit: None,
            deadline_ms: None,
        })
        .unwrap();
        assert!(out.starts_with("3 document(s)"), "{out}");
        assert!(!out.contains("bob"), "{out}");
    }

    #[test]
    fn end_to_end_batch_ingest_load() {
        let tmp = vist_storage::testutil::TempDir::new("cli-batch-ingest");
        let index = tmp.file("i.idx");
        let corpus = tmp.file("corpus");
        std::fs::create_dir(&corpus).unwrap();
        for (i, name) in ["ann", "bob", "eve", "dan", "kim"].iter().enumerate() {
            std::fs::write(
                corpus.join(format!("{i}.xml")),
                format!("<book><author>{name}</author></book>"),
            )
            .unwrap();
        }

        run(parse_args(&argv(&format!("create {}", index.display()))).unwrap()).unwrap();
        let out = run(parse_args(&argv(&format!(
            "load {} {} --ingest-threads 2 --batch-size 2",
            index.display(),
            corpus.display()
        )))
        .unwrap())
        .unwrap();
        assert!(out.contains("batch ingested 5 document(s)"), "{out}");
        assert!(out.contains("3 group commit(s)"), "{out}");
        assert!(out.contains("(ids 0..=4)"), "{out}");

        // Batch-ingested documents are dynamic-path residents: no segment
        // is created, and they answer queries like any other insert.
        let out = run(Command::Query {
            index: index.clone(),
            expr: "//author".into(),
            verify: true,
            show: false,
            workers: 1,
            trace: false,
            no_plan: false,
            limit: None,
            deadline_ms: None,
        })
        .unwrap();
        assert!(out.starts_with("5 document(s)"), "{out}");

        // The human stats format carries the ingest lines (counters are
        // process-local, so a fresh open reads zeros — the lines must
        // still be there).
        let out = run(Command::Stats {
            index: index.clone(),
            format: StatsFormat::Human,
        })
        .unwrap();
        assert!(out.contains("documents:            5"), "{out}");
        assert!(out.contains("segments:             0"), "{out}");
        assert!(out.contains("ingest batches:"), "{out}");
        assert!(out.contains("ingest batch docs:"), "{out}");
        assert!(out.contains("ingest dkey cache:"), "{out}");
        assert!(out.contains("ingest edge cache:"), "{out}");
    }

    /// Build a small index for the observability-command tests.
    fn obs_fixture(tag: &str) -> (vist_storage::testutil::TempDir, PathBuf) {
        let tmp = vist_storage::testutil::TempDir::new(tag);
        let index = tmp.file("i.idx");
        let xml = tmp.file("d.xml");
        std::fs::write(
            &xml,
            "<site><people><person><name>ann</name></person>\
             <person><name>bob</name></person></people></site>",
        )
        .unwrap();
        run(parse_args(&argv(&format!("create {}", index.display()))).unwrap()).unwrap();
        run(Command::Add {
            index: index.clone(),
            files: vec![xml],
        })
        .unwrap();
        (tmp, index)
    }

    #[test]
    fn query_trace_prints_span_tree() {
        let (_tmp, index) = obs_fixture("cli-trace");
        let out = run(Command::Query {
            index,
            expr: "/site/people/person/name".into(),
            verify: false,
            show: false,
            workers: 1,
            trace: true,
            no_plan: false,
            limit: None,
            deadline_ms: None,
        })
        .unwrap();
        assert!(out.contains("trace:"), "{out}");
        assert!(out.contains("query"), "{out}");
        assert!(out.contains("translate"), "{out}");
        assert!(out.contains("match"), "{out}");
        // The command restores the global toggle afterwards.
        assert!(!vist_obs::tracing_enabled());
    }

    #[test]
    fn stats_machine_formats_expose_all_layers() {
        let (_tmp, index) = obs_fixture("cli-stats-fmt");
        // Run one query so the query-path metrics have moved.
        run(Command::Query {
            index: index.clone(),
            expr: "//name".into(),
            verify: false,
            show: false,
            workers: 1,
            trace: false,
            no_plan: false,
            limit: None,
            deadline_ms: None,
        })
        .unwrap();
        let prom = run(Command::Stats {
            index: index.clone(),
            format: StatsFormat::Prometheus,
        })
        .unwrap();
        // One counter, gauge and histogram from each instrumented crate.
        for name in [
            "vist_storage_pool_miss_total",
            "vist_storage_store_bytes",
            "vist_storage_page_read_nanos",
            "vist_btree_get_total",
            "vist_btree_depth",
            "vist_btree_probe_depth",
            "vist_core_query_total",
            "vist_core_documents",
            "vist_core_query_nanos",
        ] {
            assert!(prom.contains(name), "missing {name} in:\n{prom}");
        }
        assert!(prom.contains("# TYPE"), "{prom}");
        assert!(prom.contains("_bucket{le="), "{prom}");

        let json = run(Command::Stats {
            index,
            format: StatsFormat::Json,
        })
        .unwrap();
        assert!(json.contains("\"vist_core_query_total\""), "{json}");
        assert!(json.contains("\"vist_storage_store_bytes\""), "{json}");
        assert!(json.contains("\"p99\""), "{json}");
    }

    #[test]
    fn profile_replays_a_workload() {
        let (tmp, index) = obs_fixture("cli-profile");
        let qfile = tmp.file("q.txt");
        std::fs::write(&qfile, "# workload\n/site/people/person/name\n\n//name\n").unwrap();
        let out = run(Command::Profile {
            index: index.clone(),
            queries: qfile.clone(),
            workers: 2,
            slow_ms: 0,
        })
        .unwrap();
        assert!(out.contains("replayed 2 query(ies)"), "{out}");
        assert!(out.contains("/site/people/person/name"), "{out}");
        assert!(out.contains("workload total:"), "{out}");
        assert!(out.contains("slow-query log"), "{out}");

        let missing = tmp.file("absent.txt");
        assert!(run(Command::Profile {
            index,
            queries: missing,
            workers: 1,
            slow_ms: 0,
        })
        .is_err());
    }

    #[test]
    fn parse_query_deadline() {
        let c = parse_args(&argv("query idx //author --deadline-ms 250")).unwrap();
        match c {
            Command::Query { deadline_ms, .. } => assert_eq!(deadline_ms, Some(250)),
            other => panic!("{other:?}"),
        }
        assert!(parse_args(&argv("query idx //author --deadline-ms soon")).is_err());
        assert!(parse_args(&argv("query idx //author --deadline-ms")).is_err());
    }

    #[test]
    fn parse_serve() {
        let c = parse_args(&argv(
            "serve idx --addr 127.0.0.1:0 --max-inflight 2 --queue-depth 3 \
             --query-workers 4 --max-deadline-ms 500 --drain-deadline-ms 900 \
             --slow-ms 25 --access-log access.jsonl",
        ))
        .unwrap();
        assert_eq!(
            c,
            Command::Serve {
                index: PathBuf::from("idx"),
                addr: "127.0.0.1:0".into(),
                max_inflight: 2,
                queue_depth: 3,
                query_workers: 4,
                max_deadline_ms: 500,
                drain_deadline_ms: 900,
                slow_ms: 25,
                access_log: Some(PathBuf::from("access.jsonl")),
            }
        );
        // Defaults fill in everything but the index path.
        match parse_args(&argv("serve idx")).unwrap() {
            Command::Serve {
                index,
                queue_depth,
                max_deadline_ms,
                slow_ms,
                access_log,
                ..
            } => {
                assert_eq!(index, PathBuf::from("idx"));
                assert_eq!(queue_depth, vist_serve::ServeConfig::default().queue_depth);
                assert_eq!(
                    max_deadline_ms,
                    vist_serve::ServeConfig::default().max_deadline_ms
                );
                assert_eq!(slow_ms, 0);
                assert_eq!(access_log, None);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_args(&argv("serve")).is_err());
        assert!(parse_args(&argv("serve idx --max-inflight lots")).is_err());
        assert!(parse_args(&argv("serve idx --slow-ms soon")).is_err());
        assert!(parse_args(&argv("serve idx --access-log")).is_err());
    }

    #[test]
    fn parse_traces() {
        assert_eq!(
            parse_args(&argv("traces --addr 127.0.0.1:9 00ff")).unwrap(),
            Command::Traces {
                addr: "127.0.0.1:9".into(),
                id: Some("00ff".into()),
            }
        );
        assert_eq!(
            parse_args(&argv("traces")).unwrap(),
            Command::Traces {
                addr: vist_serve::ServeConfig::default().addr,
                id: None,
            }
        );
        assert!(parse_args(&argv("traces a b")).is_err());
        // A malformed id is rejected before any connection attempt.
        let err = run(Command::Traces {
            addr: "127.0.0.1:1".into(),
            id: Some("not-hex".into()),
        })
        .unwrap_err();
        assert!(err.contains("not a trace id"), "{err}");
    }

    #[test]
    fn parse_bench_serve() {
        let c = parse_args(&argv(
            "bench-serve --addr 127.0.0.1:4170 --expr /book --deadline-ms 100 \
             --clients 2 --burst-clients 16 --duration-ms 50 --smoke --out r.json",
        ))
        .unwrap();
        assert_eq!(
            c,
            Command::BenchServe {
                addr: "127.0.0.1:4170".into(),
                expr: "/book".into(),
                deadline_ms: 100,
                clients: Some(2),
                burst_clients: Some(16),
                duration_ms: Some(50),
                smoke: true,
                out: Some(PathBuf::from("r.json")),
            }
        );
        match parse_args(&argv("bench-serve")).unwrap() {
            Command::BenchServe { smoke, out, .. } => {
                assert!(!smoke);
                assert_eq!(out, None);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_args(&argv("bench-serve stray")).is_err());
    }

    #[test]
    fn broken_pipe_is_a_clean_stop_not_an_error() {
        struct Sink(std::io::ErrorKind);
        impl std::io::Write for Sink {
            fn write(&mut self, _b: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::from(self.0))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut ok = Vec::new();
        assert!(write_or_broken_pipe(&mut ok, "hello").unwrap());
        assert_eq!(ok, b"hello");
        // A hung-up reader is a clean stop…
        let mut gone = Sink(std::io::ErrorKind::BrokenPipe);
        assert!(!write_or_broken_pipe(&mut gone, "x").unwrap());
        // …while any other I/O failure propagates.
        let mut broken = Sink(std::io::ErrorKind::PermissionDenied);
        assert!(write_or_broken_pipe(&mut broken, "x").is_err());
    }
}
