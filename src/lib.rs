//! # ViST — a dynamic index for querying XML data by tree structures
//!
//! A from-scratch Rust reproduction of Wang, Park, Fan & Yu,
//! *"ViST: A Dynamic Index Method for Querying XML Data by Tree
//! Structures"* (SIGMOD 2003), including every substrate the paper builds
//! on and every system it compares against.
//!
//! This crate is the facade: it re-exports the public API of the workspace
//! crates. See the repository `README.md` for an architecture overview and
//! `DESIGN.md` / `EXPERIMENTS.md` for the reproduction details.
//!
//! ## Quick start
//!
//! ```
//! use vist::{IndexOptions, QueryOptions, VistIndex};
//!
//! let mut index = VistIndex::in_memory(IndexOptions::default()).unwrap();
//! index.insert_xml("<book><author>David</author><year>1988</year></book>").unwrap();
//! index.insert_xml("<book><author>Mary</author><year>1999</year></book>").unwrap();
//!
//! let hits = index.query("/book/author[text='David']", &QueryOptions::default()).unwrap();
//! assert_eq!(hits.doc_ids.len(), 1);
//! ```
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | root | `vist-core` | [`VistIndex`], [`RistIndex`], [`NaiveIndex`], options, stats |
//! | [`xml`] | `vist-xml` | XML parser, DOM, builder, serializer |
//! | [`seq`] | `vist-seq` | structure-encoded sequences, symbols, scopes |
//! | [`query`] | `vist-query` | query language, translation, exact matcher |
//! | [`baselines`] | `vist-baselines` | Index-Fabric-style and XISS-style indexes |
//! | [`datagen`] | `vist-datagen` | DBLP / XMARK / synthetic generators |
//! | [`storage`] | `vist-storage` | pagers, buffer pool, slotted pages |
//! | [`btree`] | `vist-btree` | the disk B+Tree substrate |
//! | [`obs`] | `vist-obs` | metrics registry, span tracing, slow-query log |
//! | [`serve`] | `vist-serve` | network front-end: binary protocol + HTTP shim, admission control, drain |

pub use vist_core::{
    search_sequences, AllocatorKind, DocId, Error, IndexOptions, IndexStats, MatchCountersSnapshot,
    NaiveIndex, QueryOptions, QueryResult, QueryStats, Result, RistIndex, SearchMode,
    SearchOutcome, StageTimings, StatsModel, VistIndex,
};

/// The `vist` command-line tool's implementation (parse + execute).
pub mod cli;

/// XML toolchain (`vist-xml`).
pub mod xml {
    pub use vist_xml::*;
}

/// Structure-encoded sequences (`vist-seq`).
pub mod seq {
    pub use vist_seq::*;
}

/// Query language and matching (`vist-query`).
pub mod query {
    pub use vist_query::*;
}

/// The paper's comparison systems (`vist-baselines`).
pub mod baselines {
    pub use vist_baselines::*;
}

/// Dataset generators (`vist-datagen`).
pub mod datagen {
    pub use vist_datagen::*;
}

/// Paged storage (`vist-storage`).
pub mod storage {
    pub use vist_storage::*;
}

/// B+Tree substrate (`vist-btree`).
pub mod btree {
    pub use vist_btree::*;
}

/// Zero-dependency observability: metrics registry, span tracing,
/// slow-query log (`vist-obs`). See `docs/OBSERVABILITY.md`.
pub mod obs {
    pub use vist_obs::*;
}

/// Network front-end (`vist-serve`): `vist serve` / `vist bench-serve`,
/// deadlines, admission control, graceful drain. See `docs/SERVING.md`.
pub mod serve {
    pub use vist_serve::*;
}
